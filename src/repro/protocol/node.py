"""The per-node join-protocol state machine.

This is a faithful, asynchronous translation of the paper's pseudo-code
(Figures 3 and 5-14).  The only structural difference is that the
``copying``-status ``while`` loop of Figure 5, written there as
synchronous table reads, is driven here by explicit CpRstMsg/CpRlyMsg
exchanges -- which is exactly the message exchange the paper says it
omits "for clarity of presentation".

Similarly, the RvNghNotiMsg/RvNghNotiRlyMsg bookkeeping that the paper
omits from its pseudo-code ("when any node x sets N_x(i,j) = y, x needs
to send a RvNghNotiMsg(y, N_x(i,j).state) to y, and y should reply to x
if the state is not consistent with y.status") is implemented in
:meth:`ProtocolNode._fill_entry` / the two RvNgh handlers.

State variable mapping (Figure 3):

=================  =====================================
paper              here
=================  =====================================
``x.status``       ``self.status``
``N_x(i,j)``       ``self.table``
``R_x(i,j)``       ``self.table`` reverse-neighbor sets
``x.noti_level``   ``self.noti_level``
``Q_r``            ``self.q_reply``
``Q_n``            ``self.q_notified``
``Q_j``            ``self.q_joinwait``
``Q_sr``           ``self.q_spe_reply``
``Q_sn``           ``self.q_spe_sent``
=================  =====================================
"""

from __future__ import annotations

from typing import Callable, Optional, Set

from repro.ids.digits import PACKED_DIGIT_BITS, PACKED_DIGIT_MASK, NodeId
from repro.network.node import NetworkNode
from repro.network.transport import Transport
from repro.optimize.mixin import OptimizationMixin
from repro.protocol.leave import LeaveProtocolMixin
from repro.recovery.mixin import RecoveryMixin
from repro.protocol.messages import (
    CpRlyMsg,
    CpRstMsg,
    InSysNotiMsg,
    JoinNotiMsg,
    JoinNotiRlyMsg,
    JoinWaitMsg,
    JoinWaitRlyMsg,
    RvNghDropMsg,
    RvNghNotiMsg,
    RvNghNotiRlyMsg,
    SpeNotiMsg,
    SpeNotiRlyMsg,
    snapshot_entry,
)
from repro.protocol.sizing import (
    SizingPolicy,
    join_noti_payload,
    join_noti_reply_payload,
)
from repro.protocol.status import NodeStatus
from repro.core.trace import NullTraceLog, TraceLog
from repro.routing.entry import NeighborState
from repro.routing.table import NeighborTable, TableSnapshot

#: The array backend under a private name: the fast-path guards below
#: must keep pointing at the real class even while
#: :func:`repro.perf.baseline.use_dict_tables` rebinds this module's
#: ``NeighborTable`` global to the dict backend.
_ARRAY_TABLE = NeighborTable


class ProtocolError(RuntimeError):
    """An execution reached a state the protocol proofs rule out."""


#: Lowest-set-bit -> digit level, for the packed-ID csuf arithmetic in
#: :meth:`ProtocolNode._check_ngh_table`: one int-keyed dict probe
#: replaces ``(lowbit.bit_length() - 1) // w`` per table entry.  Covers
#: IDs up to 32 digits; longer ones (none in practice) fall back to the
#: arithmetic form.
_LOWBIT_K = {
    1 << bit: bit // PACKED_DIGIT_BITS
    for bit in range(32 * PACKED_DIGIT_BITS)
}


class ProtocolNode(
    # OptimizationMixin precedes RecoveryMixin so its _on_measured_pong
    # overrides the recovery mixin's no-op hook.
    LeaveProtocolMixin, OptimizationMixin, RecoveryMixin, NetworkNode
):
    """One node running the hypercube join protocol.

    Nodes of the initial network ``V`` are created with
    ``status=IN_SYSTEM`` and a pre-populated (consistent) table; joining
    nodes are created with ``status=COPYING`` and start the protocol
    via :meth:`begin_join`.
    """

    def __init__(
        self,
        node_id: NodeId,
        transport: Transport,
        status: NodeStatus = NodeStatus.IN_SYSTEM,
        table: Optional[NeighborTable] = None,
        sizing: SizingPolicy = SizingPolicy.FULL,
        trace: Optional[TraceLog] = None,
    ):
        super().__init__(node_id, transport)
        self.status = status
        self.sizing = sizing
        self.trace = trace if trace is not None else NullTraceLog()
        # Category enablement is fixed at TraceLog construction, so the
        # hot fill path can skip building record kwargs when disabled.
        self._trace_fill = self.trace.enabled("fill")
        #: Optional observability hook, called as
        #: ``on_phase(node_id, status, now)`` when the join begins and
        #: on every status transition (see repro.obs.JoinObserver).
        self.on_phase: Optional[Callable[[NodeId, NodeStatus, float], None]] = (
            None
        )
        if table is not None:
            if table.owner != node_id:
                raise ValueError("table owner mismatch")
            self.table = table
        else:
            self.table = NeighborTable(node_id)
        # Backup neighbors (footnote 6): suffix-qualified nodes seen
        # for already-filled entries, kept for fault-tolerant routing.
        from repro.routing.backups import BackupStore

        self.backups = BackupStore(node_id)
        self.noti_level = 0
        self.q_reply: Set[NodeId] = set()
        self.q_notified: Set[NodeId] = set()
        self.q_joinwait: Set[NodeId] = set()
        self.q_spe_reply: Set[NodeId] = set()
        self.q_spe_sent: Set[NodeId] = set()
        # Joining-period bookkeeping (Definition 3.1): t^b and t^e.
        self.join_began_at: Optional[float] = None
        self.became_s_at: Optional[float] = 0.0 if status.is_s_node else None
        # copying-status loop variables (Figure 5's i and p).
        self._copy_level = 0
        self._copy_prev: Optional[NodeId] = None
        self._copy_target: Optional[NodeId] = None

        # Handler registration lands bound-method functions in a
        # class-shared table (see NetworkNode._class_handlers): every
        # instance would re-register the identical functions, so the
        # first instance of the class does it for all (here and in the
        # mixin _init_* helpers below).
        if CpRstMsg not in self._handlers:
            self.handles(CpRstMsg, self._on_cp_rst)
            self.handles(CpRlyMsg, self._on_cp_rly)
            self.handles(JoinWaitMsg, self._on_join_wait)
            self.handles(JoinWaitRlyMsg, self._on_join_wait_rly)
            self.handles(JoinNotiMsg, self._on_join_noti)
            self.handles(JoinNotiRlyMsg, self._on_join_noti_rly)
            self.handles(InSysNotiMsg, self._on_in_sys_noti)
            self.handles(SpeNotiMsg, self._on_spe_noti)
            self.handles(SpeNotiRlyMsg, self._on_spe_noti_rly)
            self.handles(RvNghNotiMsg, self._on_rv_ngh_noti)
            self.handles(RvNghNotiRlyMsg, self._on_rv_ngh_noti_rly)
            self.handles(RvNghDropMsg, self._on_rv_ngh_drop)
        self._init_leave_protocol()
        self._init_recovery()
        self._init_optimization()

    # ------------------------------------------------------------------
    # helpers

    @property
    def is_s_node(self) -> bool:
        return self.status.is_s_node

    def _set_status(self, status: NodeStatus) -> None:
        self.trace.record(
            self.now, "status", node=self.node_id, status=status
        )
        self.status = status
        if self.on_phase is not None:
            self.on_phase(self.node_id, status, self.now)

    def _fill_entry(
        self, level: int, digit: int, node: NodeId, state: NeighborState
    ) -> None:
        """Set ``N_x(level, digit) = node`` and notify the new neighbor
        that we point at it (the paper's RvNghNotiMsg rule).

        Every caller has just observed the entry empty and derived
        ``(level, digit)`` from ``csuf(node, owner)``, so the trusted
        :meth:`~repro.routing.table.NeighborTable.fill_empty` applies.
        """
        self.table.fill_empty(level, digit, node, state)
        if self._trace_fill:
            self.trace.record(
                self.now, "fill", node=self.node_id, level=level,
                digit=digit, neighbor=node, state=state,
            )
        if node != self.node_id:
            self.send(node, RvNghNotiMsg(self.node_id, level, digit, state))

    def _csuf(self, other: NodeId) -> int:
        return self.node_id.csuf_len(other)

    # ------------------------------------------------------------------
    # status copying (Figure 5)

    def begin_join(self, gateway: NodeId) -> None:
        """Start joining, given a node ``g0`` of the existing network."""
        if self.status is not NodeStatus.COPYING:
            raise ProtocolError(f"{self.node_id} already joined")
        if gateway == self.node_id:
            raise ProtocolError("a node cannot join via itself")
        self.join_began_at = self.now
        if self.on_phase is not None:
            self.on_phase(self.node_id, self.status, self.now)
        self._copy_level = 0
        self._copy_prev = None
        self._copy_target = gateway
        self.send(gateway, CpRstMsg(self.node_id))

    def _on_cp_rst(self, msg: CpRstMsg) -> None:
        self.send(msg.sender, CpRlyMsg(self.node_id, self.table.snapshot()))

    def _on_cp_rly(self, msg: CpRlyMsg) -> None:
        if self.status is not NodeStatus.COPYING:
            raise ProtocolError("CpRlyMsg outside copying status")
        if msg.sender != self._copy_target:
            raise ProtocolError("CpRlyMsg from unexpected node")
        level = self._copy_level
        own_digit = self.node_id.digit(level)
        # Copy level-`level` neighbors of g into our own table.  The
        # (level, x[level]) position is skipped: Figure 5 overwrites it
        # with x itself right after the loop ("the primary
        # (i, x[i])-neighbor of x is chosen to be x itself"), so copying
        # it would only generate a RvNghNotiMsg for a pointer that never
        # survives.  Its occupant -- the paper's next g -- is read from
        # the snapshot below.
        table = self.table
        if table.__class__ is _ARRAY_TABLE:
            # Array-backend fast path: emptiness is a direct cell read
            # (the snapshot loop touches every entry of the sender's
            # table once per copy level).
            cells = table._cells
            row = level * table.base
            for entry in msg.table:
                if entry[0] != level:
                    continue
                digit = entry[1]
                if digit != own_digit and cells[row + digit] is None:
                    self._fill_entry(level, digit, entry[2], entry[3])
        else:
            for entry in msg.table:
                if entry.level != level or entry.digit == own_digit:
                    continue
                if table.is_empty(level, entry.digit):
                    self._fill_entry(
                        level, entry.digit, entry.node, entry.state
                    )
        p = msg.sender
        cell = snapshot_entry(msg.table, level, own_digit)
        g, s = cell if cell is not None else (None, None)
        self._copy_level = level + 1
        self._copy_prev = p
        if g is not None and s is NeighborState.S:
            # Loop continues: copy the next level from g.
            self._copy_target = g
            self.send(g, CpRstMsg(self.node_id))
            return
        # Loop exits: install self-pointers, go to waiting, send the
        # first JoinWaitMsg.  The (i, x[i]) positions are empty by
        # construction — the copy loop above skips the own digit at
        # every level — so the trusted fill applies.
        for i in range(self.node_id.num_digits):
            self.table.fill_empty(
                i, self.node_id.digit(i), self.node_id, NeighborState.T
            )
        self._set_status(NodeStatus.WAITING)
        target = p if g is None else g
        self.send(target, JoinWaitMsg(self.node_id))
        self.q_notified.add(target)
        self.q_reply.add(target)

    # ------------------------------------------------------------------
    # JoinWaitMsg / JoinWaitRlyMsg (Figures 6 and 7)

    def _on_join_wait(self, msg: JoinWaitMsg) -> None:
        x = msg.sender
        k = self._csuf(x)
        if self.status is NodeStatus.IN_SYSTEM:
            current = self.table.get(k, x.digit(k))
            if current is not None and current != x:
                self.send(
                    x,
                    JoinWaitRlyMsg(
                        self.node_id, False, current, self.table.snapshot()
                    ),
                )
            else:
                if current is None:
                    self._fill_entry(k, x.digit(k), x, NeighborState.T)
                self.send(
                    x,
                    JoinWaitRlyMsg(
                        self.node_id, True, x, self.table.snapshot()
                    ),
                )
        else:
            # Delay the reply until we become an S-node (Figure 13).
            self.q_joinwait.add(x)

    def _on_join_wait_rly(self, msg: JoinWaitRlyMsg) -> None:
        y = msg.sender
        self.q_reply.discard(y)
        k = self._csuf(y)
        if self.table.get(k, y.digit(k)) == y:
            self.table.set_state(k, y.digit(k), NeighborState.S)
        if msg.positive:
            if self.status is not NodeStatus.WAITING:
                raise ProtocolError(
                    f"positive JoinWaitRlyMsg in status {self.status}"
                )
            self._set_status(NodeStatus.NOTIFYING)
            self.noti_level = k
            self.table.add_reverse(k, self.node_id.digit(k), y)
        else:
            u = msg.referral
            self.send(u, JoinWaitMsg(self.node_id))
            self.q_notified.add(u)
            self.q_reply.add(u)
        self._check_ngh_table(msg.table)
        if (
            self.status is NodeStatus.NOTIFYING
            and not self.q_reply
            and not self.q_spe_reply
        ):
            self._switch_to_s_node()

    # ------------------------------------------------------------------
    # Check_Ngh_Table (Figure 8)

    def _check_ngh_table(self, snapshot: TableSnapshot) -> None:
        # The hottest protocol loop: every table-carrying message lands
        # here, iterating the sender's whole snapshot.  On the standard
        # array table backend the whole per-entry decision runs as int
        # arithmetic on the packed ID forms: the XOR of the packed IDs
        # gives csuf directly (lowest set bit / digit width), a shift
        # extracts the digit, and the flat cell index follows -- no
        # NodeId method calls, no tuple keys.  Loop-invariant lookups
        # are bound once; none of them can change inside the loop
        # (status and noti_level only move in message handlers, and
        # q_notified is the same set _send_join_noti mutates).
        own_id = self.node_id
        notifying = self.status is NodeStatus.NOTIFYING
        noti_level = self.noti_level
        q_notified = self.q_notified
        table = self.table
        if table.__class__ is _ARRAY_TABLE:
            own_packed = own_id._packed
            base = table.base
            cells = table._cells
            # The backup-offer body is inlined below (it fires for
            # every already-filled entry, the overwhelmingly common
            # case once the network densifies); keep it in lockstep
            # with BackupStore.offer_flat.
            backups = self.backups
            bstore = backups._backups
            bcap = backups.capacity
            w = PACKED_DIGIT_BITS
            mask = PACKED_DIGIT_MASK
            lowbit_k = _LOWBIT_K
            if not notifying:
                # Non-notifying variant: identical body minus the
                # (loop-invariant-guarded) notification step, so the
                # common copying/in-system case pays nothing for it.
                for entry in snapshot:
                    u = entry[2]
                    up = u._packed
                    z = up ^ own_packed
                    if z == 0:
                        continue
                    if z & mask:
                        # csuf = 0 (lowest digits differ): with random
                        # IDs this is (b-1)/b of all entries.
                        k = 0
                        digit = idx = up & mask
                    else:
                        try:
                            k = lowbit_k[z & -z]
                        except KeyError:
                            k = ((z & -z).bit_length() - 1) // w
                        digit = (up >> (k * w)) & mask
                        idx = k * base + digit
                    current = cells[idx]
                    if current is None:
                        self._fill_entry(k, digit, u, entry[3])
                    elif current._packed != up:
                        # Entry taken: keep u as a backup (footnote 6).
                        # try/except: existing buckets dominate, and a
                        # plain subscript beats dict.get on hits.
                        try:
                            bucket = bstore[idx]
                        except KeyError:
                            if bcap >= 1:
                                bstore[idx] = [u]
                        else:
                            if len(bucket) < bcap and u not in bucket:
                                bucket.append(u)
                return
            for entry in snapshot:
                u = entry[2]
                up = u._packed
                z = up ^ own_packed
                if z == 0:
                    continue
                if z & mask:
                    k = 0
                    digit = idx = up & mask
                else:
                    try:
                        k = lowbit_k[z & -z]
                    except KeyError:
                        k = ((z & -z).bit_length() - 1) // w
                    digit = (up >> (k * w)) & mask
                    idx = k * base + digit
                current = cells[idx]
                if current is None:
                    self._fill_entry(k, digit, u, entry[3])
                elif current._packed != up:
                    # Entry taken: keep u as a backup (footnote 6).
                    try:
                        bucket = bstore[idx]
                    except KeyError:
                        if bcap >= 1:
                            bstore[idx] = [u]
                    else:
                        if len(bucket) < bcap and u not in bucket:
                            bucket.append(u)
                if k >= noti_level and u not in q_notified:
                    self._send_join_noti(u, k)
            return
        # Generic path for alternate backends (DictNeighborTable).
        csuf = own_id.csuf_len
        table_get = table.get
        offer = self.backups.offer
        for _, _, u, state in snapshot:
            if u == own_id:
                continue
            k = csuf(u)
            digit = u.digit(k)
            current = table_get(k, digit)
            if current is None:
                self._fill_entry(k, digit, u, state)
            elif current != u:
                # Entry taken: keep u as a backup (footnote 6).
                offer(k, digit, u)
            if notifying and k >= noti_level and u not in q_notified:
                self._send_join_noti(u, k)

    def _send_join_noti(self, target: NodeId, csuf_len: int) -> None:
        snapshot, bitmap, bit_vector_bytes = join_noti_payload(
            self.sizing, self.table, self.noti_level, csuf_len
        )
        self.send(
            target,
            JoinNotiMsg(
                self.node_id,
                snapshot,
                self.noti_level,
                bit_vector_bytes,
                bitmap,
            ),
        )
        self.q_notified.add(target)
        self.q_reply.add(target)

    # ------------------------------------------------------------------
    # JoinNotiMsg / JoinNotiRlyMsg (Figures 9 and 10)

    def _on_join_noti(self, msg: JoinNotiMsg) -> None:
        x = msg.sender
        k = self._csuf(x)
        digit = x.digit(k)
        current = self.table.get(k, digit)
        if current is None:
            self._fill_entry(k, digit, x, NeighborState.T)
            current = x
        elif current != x:
            self.backups.offer_qualified(k, digit, x)
        conflict = False
        their_entry = snapshot_entry(msg.table, k, self.node_id.digit(k))
        if (
            their_entry is None or their_entry[0] != self.node_id
        ) and self.status is NodeStatus.IN_SYSTEM:
            conflict = True
        positive = current == x
        reply_table = join_noti_reply_payload(
            self.sizing, self.table, msg.noti_level, msg.bitmap
        )
        self.send(
            x, JoinNotiRlyMsg(self.node_id, positive, reply_table, conflict)
        )
        self._check_ngh_table(msg.table)

    def _on_join_noti_rly(self, msg: JoinNotiRlyMsg) -> None:
        if self.status is not NodeStatus.NOTIFYING:
            raise ProtocolError(
                f"JoinNotiRlyMsg in status {self.status}"
            )
        y = msg.sender
        self.q_reply.discard(y)
        k = self._csuf(y)
        if msg.positive:
            self.table.add_reverse(k, self.node_id.digit(k), y)
        if (
            msg.conflict
            and k > self.noti_level
            and y not in self.q_spe_sent
        ):
            occupant = self.table.get(k, y.digit(k))
            if occupant is not None and occupant != y:
                self.send(
                    occupant, SpeNotiMsg(self.node_id, self.node_id, y)
                )
                self.q_spe_sent.add(y)
                self.q_spe_reply.add(y)
        self._check_ngh_table(msg.table)
        if not self.q_reply and not self.q_spe_reply:
            self._switch_to_s_node()

    # ------------------------------------------------------------------
    # SpeNotiMsg / SpeNotiRlyMsg (Figures 11 and 12)

    def _on_spe_noti(self, msg: SpeNotiMsg) -> None:
        y = msg.subject
        k = self._csuf(y)
        if self.table.get(k, y.digit(k)) is None:
            self._fill_entry(k, y.digit(k), y, NeighborState.S)
        current = self.table.get(k, y.digit(k))
        if current != y:
            self.send(current, SpeNotiMsg(self.node_id, msg.origin, y))
        else:
            self.send(
                msg.origin, SpeNotiRlyMsg(self.node_id, msg.origin, y)
            )

    def _on_spe_noti_rly(self, msg: SpeNotiRlyMsg) -> None:
        self.q_spe_reply.discard(msg.subject)
        if (
            self.status is NodeStatus.NOTIFYING
            and not self.q_reply
            and not self.q_spe_reply
        ):
            self._switch_to_s_node()

    # ------------------------------------------------------------------
    # Switch_To_S_Node and InSysNotiMsg (Figures 13 and 14)

    def _switch_to_s_node(self) -> None:
        if self.status is NodeStatus.IN_SYSTEM:
            raise ProtocolError("double switch to S-node")
        self._set_status(NodeStatus.IN_SYSTEM)
        self.became_s_at = self.now
        for i in range(self.node_id.num_digits):
            self.table.set_state(i, self.node_id.digit(i), NeighborState.S)
        for v in self.table.all_reverse_neighbors():
            self.send(v, InSysNotiMsg(self.node_id))
        for u in self.q_joinwait:
            k = self._csuf(u)
            current = self.table.get(k, u.digit(k))
            if current is None or current == u:
                if current is None:
                    self._fill_entry(k, u.digit(k), u, NeighborState.T)
                self.send(
                    u,
                    JoinWaitRlyMsg(
                        self.node_id, True, u, self.table.snapshot()
                    ),
                )
            else:
                self.send(
                    u,
                    JoinWaitRlyMsg(
                        self.node_id, False, current, self.table.snapshot()
                    ),
                )
        self.q_joinwait.clear()

    def _on_in_sys_noti(self, msg: InSysNotiMsg) -> None:
        x = msg.sender
        xp = x._packed
        s_state = NeighborState.S
        set_state = self.table.set_state
        # Iterate the (immutable) snapshot tuple directly; set_state
        # only invalidates the table's *next* snapshot.  Packed-int
        # equality stands in for NodeId == within one ID space.
        for entry in self.table.snapshot():
            if entry[2]._packed == xp and entry[3] is not s_state:
                set_state(entry[0], entry[1], s_state)

    # ------------------------------------------------------------------
    # RvNghNotiMsg / RvNghNotiRlyMsg (described in Section 4's preamble)

    def _on_rv_ngh_noti(self, msg: RvNghNotiMsg) -> None:
        self.table.add_reverse(msg.level, msg.digit, msg.sender)
        actual = (
            NeighborState.S if self.status.is_s_node else NeighborState.T
        )
        if msg.state is not actual:
            self.send(
                msg.sender,
                RvNghNotiRlyMsg(self.node_id, msg.level, msg.digit, actual),
            )

    def _on_rv_ngh_noti_rly(self, msg: RvNghNotiRlyMsg) -> None:
        if self.table.get(msg.level, msg.digit) == msg.sender:
            self.table.set_state(msg.level, msg.digit, msg.state)

    def _on_rv_ngh_drop(self, msg: RvNghDropMsg) -> None:
        self.table.remove_reverse(msg.level, msg.digit, msg.sender)
