"""Lightweight protocol tracing.

A :class:`TraceLog` collects timestamped records (message sends, status
transitions, table writes).  Tracing is opt-in per category so that the
large Figure-15 runs pay nothing for categories they do not record.

This lives in :mod:`repro.core` because the records are *protocol*
facts -- a status change at protocol time ``t`` -- independent of which
runtime produced them; :mod:`repro.sim.trace` re-exports these names
for compatibility.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Set, Tuple


@dataclass(frozen=True)
class TraceRecord:
    """One trace entry: when, what kind, and free-form details."""

    time: float
    category: str
    details: Tuple[Tuple[str, Any], ...]

    def get(self, key: str, default: Any = None) -> Any:
        """Look up one detail field, with a default."""
        for k, v in self.details:
            if k == key:
                return v
        return default


class TraceLog:
    """Collects :class:`TraceRecord` entries for enabled categories."""

    def __init__(self, categories: Optional[Iterable[str]] = None):
        self._enabled: Optional[Set[str]] = (
            set(categories) if categories is not None else None
        )
        self._records: List[TraceRecord] = []

    def enabled(self, category: str) -> bool:
        """Whether records of ``category`` are being kept."""
        return self._enabled is None or category in self._enabled

    def record(self, time: float, category: str, **details: Any) -> None:
        """Append a record (dropped if the category is disabled)."""
        if not self.enabled(category):
            return
        self._records.append(
            TraceRecord(time, category, tuple(sorted(details.items())))
        )

    def records(self, category: Optional[str] = None) -> List[TraceRecord]:
        """All records, optionally filtered by category."""
        if category is None:
            return list(self._records)
        return [r for r in self._records if r.category == category]

    def count(self, category: str) -> int:
        """Number of records in ``category``."""
        return sum(1 for r in self._records if r.category == category)

    def clear(self) -> None:
        """Drop all collected records."""
        self._records.clear()

    def __len__(self) -> int:
        return len(self._records)


class NullTraceLog(TraceLog):
    """A trace log that drops everything (default for big runs)."""

    def __init__(self) -> None:
        super().__init__(categories=())

    def enabled(self, category: str) -> bool:
        """Always False: nothing is recorded."""
        return False

    def record(self, time: float, category: str, **details: Any) -> None:
        """Drop the record."""
        return None
