"""The join protocol as a pure effect-emitting state machine.

:class:`JoinMachine` exposes *exactly* the protocol logic of
:class:`~repro.protocol.node.ProtocolNode` -- the same handlers, the
same state variables, the same theorems hold -- behind a sans-io
surface: you feed it :class:`~repro.core.effects.MessageReceived` /
:class:`~repro.core.effects.TimerFired` inputs and it hands back
:class:`~repro.core.effects.Effect` values instead of touching a
transport or a clock.  The wrapping works by dependency inversion, not
by forking the code: the node's entire environment is the narrow
``transport.send`` / ``transport.send_lossy`` / ``runtime.now`` /
``runtime.schedule`` surface, and the machine swaps in an
effect-recording implementation of it.  One protocol implementation,
three ways to run it: the virtual-time runtime, the asyncio runtime,
and this pure form.

:func:`run_effect_loop` is the proof that the core is self-contained:
a ~60-line pure interpreter (a heap of pending deliveries, no
:mod:`repro.sim`, no :mod:`asyncio`) that drives a set of machines to
quiescence and the paper's Definition 3.8 consistency.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple

from repro.core.effects import (
    CancelTimer,
    Effect,
    MessageReceived,
    Send,
    SendLossy,
    StartTimer,
    StatusChanged,
    Timer,
    TimerFired,
)
from repro.core.trace import TraceLog
from repro.ids.digits import NodeId
from repro.network.message import Message
from repro.protocol.sizing import SizingPolicy
from repro.protocol.status import NodeStatus
from repro.routing.table import NeighborTable


class _RecordingRuntime:
    """The machine's clock and timer factory: emits effects, no IO."""

    def __init__(self, machine: "JoinMachine"):
        self._machine = machine
        #: Machine-local time; advanced by the inputs' timestamps.
        self.now = 0.0

    def schedule(
        self,
        delay: float,
        action: Callable[..., None],
        payload: Any = None,
    ) -> Timer:
        timer = Timer(action, payload, on_cancel=self._machine._on_cancel)
        self._machine._emit(StartTimer(timer, delay))
        return timer


class _RecordingTransport:
    """The machine's message sink: emits effects, no delivery."""

    def __init__(self, runtime: _RecordingRuntime, machine: "JoinMachine"):
        self.runtime = runtime
        self._machine = machine

    def register(self, node: Any) -> None:
        return None

    def unregister(self, node_id: NodeId) -> None:
        return None

    def send(self, dst: NodeId, message: Message) -> None:
        self._machine._emit(Send(dst, message))

    def send_lossy(self, dst: NodeId, message: Message) -> bool:
        # Liveness of dst is the environment's knowledge, not the
        # machine's; emit and let the environment drop if dead.
        self._machine._emit(SendLossy(dst, message))
        return True


class MachineError(RuntimeError):
    """An input the machine cannot accept (e.g. a cancelled timer)."""


class JoinMachine:
    """One node's join/leave/recovery protocol, sans-io.

    Every public method returns the list of effects the input caused,
    in emission order.  The machine never blocks, sleeps, or sends;
    state lives in :attr:`node` (a full
    :class:`~repro.protocol.node.ProtocolNode` over a recording
    environment), so every invariant and accessor of the production
    node -- ``status``, ``table``, the ``Q_*`` sets -- is available
    for assertions.
    """

    def __init__(
        self,
        node_id: NodeId,
        status: NodeStatus = NodeStatus.COPYING,
        table: Optional[NeighborTable] = None,
        sizing: SizingPolicy = SizingPolicy.FULL,
        trace: Optional[TraceLog] = None,
        now: float = 0.0,
    ):
        from repro.protocol.node import ProtocolNode

        self._effects: List[Effect] = []
        self._runtime = _RecordingRuntime(self)
        self._runtime.now = now
        transport = _RecordingTransport(self._runtime, self)
        #: The wrapped protocol state (inspect, never drive directly).
        self.node = ProtocolNode(
            node_id,
            transport,  # duck-typed: the node only sends and registers
            status=status,
            table=table,
            sizing=sizing,
            trace=trace,
        )
        self.node.on_phase = self._on_phase
        self.node.on_departed = self._on_departed
        self.departed = False
        # Construction must be pure: a freshly built node has said
        # nothing to the network yet.
        assert not self._effects, "node construction emitted effects"

    # -- state inspection ----------------------------------------------

    @property
    def node_id(self) -> NodeId:
        return self.node.node_id

    @property
    def status(self) -> NodeStatus:
        return self.node.status

    @property
    def table(self) -> NeighborTable:
        return self.node.table

    @property
    def now(self) -> float:
        """The machine's notion of time (from the last input)."""
        return self._runtime.now

    # -- effect plumbing ------------------------------------------------

    def _emit(self, effect: Effect) -> None:  # type: ignore[valid-type]
        self._effects.append(effect)

    def _on_cancel(self, timer: Timer) -> None:
        self._emit(CancelTimer(timer))

    def _on_phase(
        self, node_id: NodeId, status: NodeStatus, at: float
    ) -> None:
        self._emit(StatusChanged(node_id, status, at))

    def _on_departed(self, node_id: NodeId) -> None:
        self.departed = True

    def _collect(self) -> List[Effect]:  # type: ignore[valid-type]
        effects, self._effects = self._effects, []
        return effects

    def _advance(self, now: Optional[float]) -> None:
        if now is None:
            return
        if now < self._runtime.now:
            raise MachineError(
                f"time ran backwards: {now} < {self._runtime.now}"
            )
        self._runtime.now = now

    # -- driving --------------------------------------------------------

    def begin_join(
        self, gateway: NodeId, now: Optional[float] = None
    ) -> List[Effect]:  # type: ignore[valid-type]
        """Start the join through ``gateway``; returns the effects."""
        self._advance(now)
        self.node.begin_join(gateway)
        return self._collect()

    def begin_leave(self, now: Optional[float] = None) -> List[Effect]:  # type: ignore[valid-type]
        """Start a voluntary departure; returns the effects."""
        self._advance(now)
        self.node.begin_leave()
        return self._collect()

    def begin_failure_detection(
        self, timeout: float, now: Optional[float] = None
    ) -> List[Effect]:  # type: ignore[valid-type]
        """Start a liveness sweep (recovery protocol entry point)."""
        self._advance(now)
        self.node.begin_failure_detection(timeout)
        return self._collect()

    def cancel_failure_detection(
        self, now: Optional[float] = None
    ) -> List[Effect]:  # type: ignore[valid-type]
        """Call off an in-flight sweep; emits the ``CancelTimer``."""
        self._advance(now)
        self.node.cancel_failure_detection()
        return self._collect()

    def handle(
        self,
        event: Any,
        now: Optional[float] = None,
    ) -> List[Effect]:  # type: ignore[valid-type]
        """Consume one input; returns the effects it caused.

        ``now`` advances the machine clock before the input is applied
        (omit it for logical-time-free tests).  A ``TimerFired`` for a
        cancelled timer is rejected: the environment promised not to
        deliver it.
        """
        self._advance(now)
        if isinstance(event, MessageReceived):
            self.node.receive(event.message)
        elif isinstance(event, TimerFired):
            timer = event.timer
            if timer.cancelled:
                raise MachineError(f"cancelled timer delivered: {timer!r}")
            if timer.fired:
                raise MachineError(f"timer delivered twice: {timer!r}")
            timer.fired = True
            if timer.payload is None:
                timer.action()
            else:
                timer.action(timer.payload)
        else:
            raise MachineError(f"not a machine input: {event!r}")
        return self._collect()


# ---------------------------------------------------------------------------
# the pure interpreter


def run_effect_loop(
    machines: Dict[NodeId, JoinMachine],
    seeds: Iterable[Tuple[NodeId, List[Effect]]],  # type: ignore[valid-type]
    latency: Optional[Callable[[NodeId, NodeId], float]] = None,
    max_steps: int = 1_000_000,
) -> int:
    """Drive ``machines`` to quiescence with a minimal pure scheduler.

    ``seeds`` are ``(origin, effects)`` pairs -- typically the output
    of each joiner's :meth:`JoinMachine.begin_join` -- interpreted at
    time 0.  ``latency(src, dst)`` gives per-message delay (default:
    constant 1).  Returns the number of inputs delivered.

    This is deliberately *not* the simulator: no :mod:`repro.sim`
    import, no observability, ~60 lines -- existence proof that the
    protocol core needs nothing beyond effect interpretation.
    """
    if latency is None:
        latency = lambda src, dst: 1.0  # noqa: E731
    heap: List[Tuple[float, int, NodeId, Any]] = []
    seq = 0

    def interpret(
        origin: NodeId, at: float, effects: List[Effect]  # type: ignore[valid-type]
    ) -> None:
        nonlocal seq
        for effect in effects:
            if isinstance(effect, (Send, SendLossy)):
                if effect.dst not in machines:
                    if isinstance(effect, Send):
                        raise KeyError(f"unknown destination {effect.dst}")
                    continue  # lossy send to a dead node: drop
                deadline = at + latency(origin, effect.dst)
                item: Any = MessageReceived(effect.message)
                heapq.heappush(heap, (deadline, seq, effect.dst, item))
                seq += 1
            elif isinstance(effect, StartTimer):
                heapq.heappush(
                    heap,
                    (at + effect.delay, seq, origin, TimerFired(effect.timer)),
                )
                seq += 1
            # CancelTimer / StatusChanged need no action here: fired
            # timers are filtered on delivery, status is informational.

    for origin, effects in seeds:
        interpret(origin, 0.0, effects)

    steps = 0
    while heap:
        if steps >= max_steps:
            raise RuntimeError(f"no quiescence after {max_steps} inputs")
        at, _, target, event = heapq.heappop(heap)
        if isinstance(event, TimerFired) and event.timer.cancelled:
            continue
        machine = machines[target]
        if machine.departed and isinstance(event, MessageReceived):
            continue  # the network forgets departed nodes
        interpret(target, at, machine.handle(event, now=at))
        steps += 1
    return steps


__all__ = ["JoinMachine", "MachineError", "run_effect_loop"]
