"""The paper's primary contribution, under one roof.

``repro.core`` hosts the *sans-io* protocol layer -- the pieces that
are pure computation over protocol state, independent of any execution
substrate:

* :mod:`repro.core.effects` -- the input/effect vocabulary
  (``MessageReceived``/``TimerFired`` in, ``Send``/``StartTimer``/
  ``CancelTimer``/``StatusChanged`` out).
* :mod:`repro.core.machine` -- :class:`~repro.core.machine.JoinMachine`,
  the join/leave/recovery state machine as a pure effect-emitting
  object, plus a zero-IO effect loop for driving machines in tests
  and proofs.
* :mod:`repro.core.trace` -- the protocol trace log.

It also re-exports the join protocol, the consistency notions it
guarantees, the C-set tree machinery behind its proof, and the
communication-cost theorems -- i.e. everything Sections 3-5 of the
paper contribute, as opposed to the substrates (runtimes, topology,
transport, routing tables) they stand on.  The re-exports resolve
lazily (PEP 562) so that importing :mod:`repro.core` -- or one of its
pure submodules -- never drags in an execution substrate as a side
effect; none of them reach :mod:`repro.sim` either way (enforced by
``tests/test_architecture.py``).
"""

from typing import List

# name -> module that defines it; resolved on first attribute access.
_EXPORTS = {
    "expected_join_noti": "repro.analysis.expected_cost",
    "expected_join_noti_upper_bound": "repro.analysis.expected_cost",
    "level_distribution": "repro.analysis.expected_cost",
    "theorem3_bound": "repro.analysis.expected_cost",
    "ConsistencyReport": "repro.consistency.checker",
    "Violation": "repro.consistency.checker",
    "check_consistency": "repro.consistency.checker",
    "verify_reachability": "repro.consistency.verifier",
    "JoiningPeriod": "repro.csettree.classify",
    "joins_are_concurrent": "repro.csettree.classify",
    "joins_are_dependent": "repro.csettree.classify",
    "joins_are_independent": "repro.csettree.classify",
    "joins_are_sequential": "repro.csettree.classify",
    "check_condition1": "repro.csettree.conditions",
    "check_condition2": "repro.csettree.conditions",
    "check_condition3": "repro.csettree.conditions",
    "group_by_notification_suffix": "repro.csettree.notification",
    "notification_set": "repro.csettree.notification",
    "notification_suffix": "repro.csettree.notification",
    "RealizedCSetTree": "repro.csettree.realized",
    "build_realized_tree": "repro.csettree.realized",
    "CSetTreeTemplate": "repro.csettree.template",
    "build_template": "repro.csettree.template",
    "OptimizationReport": "repro.optimize",
    "measure_stretch": "repro.optimize",
    "optimize_tables": "repro.optimize",
    "JoinProtocolNetwork": "repro.protocol.join",
    "leave_sequentially": "repro.protocol.leave",
    "initialize_network": "repro.protocol.network_init",
    "single_node_table": "repro.protocol.network_init",
    "ProtocolNode": "repro.protocol.node",
    "SizingPolicy": "repro.protocol.sizing",
    "NodeStatus": "repro.protocol.status",
    "RecoveryReport": "repro.recovery",
    "fail_nodes": "repro.recovery",
    "recover_from_failures": "repro.recovery",
    # sans-io core
    "CancelTimer": "repro.core.effects",
    "Effect": "repro.core.effects",
    "Input": "repro.core.effects",
    "MessageReceived": "repro.core.effects",
    "Send": "repro.core.effects",
    "SendLossy": "repro.core.effects",
    "StartTimer": "repro.core.effects",
    "StatusChanged": "repro.core.effects",
    "Timer": "repro.core.effects",
    "TimerFired": "repro.core.effects",
    "JoinMachine": "repro.core.machine",
    "run_effect_loop": "repro.core.machine",
    "NullTraceLog": "repro.core.trace",
    "TraceLog": "repro.core.trace",
    "TraceRecord": "repro.core.trace",
}

__all__ = sorted(_EXPORTS)


def __getattr__(name: str):
    """Resolve a re-exported name on first use (PEP 562)."""
    try:
        module_name = _EXPORTS[name]
    except KeyError:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}"
        ) from None
    import importlib

    value = getattr(importlib.import_module(module_name), name)
    globals()[name] = value  # cache: next access skips __getattr__
    return value


def __dir__() -> List[str]:
    return sorted(set(globals()) | set(_EXPORTS))
