"""The paper's primary contribution, under one roof.

``repro.core`` re-exports the join protocol, the consistency notions it
guarantees, the C-set tree machinery behind its proof, and the
communication-cost theorems -- i.e. everything Sections 3-5 of the
paper contribute, as opposed to the substrates (simulator, topology,
transport, routing tables) they stand on.
"""

from repro.analysis.expected_cost import (
    expected_join_noti,
    expected_join_noti_upper_bound,
    level_distribution,
    theorem3_bound,
)
from repro.consistency.checker import (
    ConsistencyReport,
    Violation,
    check_consistency,
)
from repro.consistency.verifier import verify_reachability
from repro.csettree.classify import (
    JoiningPeriod,
    joins_are_concurrent,
    joins_are_dependent,
    joins_are_independent,
    joins_are_sequential,
)
from repro.csettree.conditions import (
    check_condition1,
    check_condition2,
    check_condition3,
)
from repro.csettree.notification import (
    group_by_notification_suffix,
    notification_set,
    notification_suffix,
)
from repro.csettree.realized import RealizedCSetTree, build_realized_tree
from repro.csettree.template import CSetTreeTemplate, build_template
from repro.optimize import (
    OptimizationReport,
    measure_stretch,
    optimize_tables,
)
from repro.protocol.join import JoinProtocolNetwork
from repro.protocol.leave import leave_sequentially
from repro.protocol.network_init import initialize_network, single_node_table
from repro.protocol.node import ProtocolNode
from repro.protocol.sizing import SizingPolicy
from repro.protocol.status import NodeStatus
from repro.recovery import (
    RecoveryReport,
    fail_nodes,
    recover_from_failures,
)

__all__ = [
    "CSetTreeTemplate",
    "ConsistencyReport",
    "JoinProtocolNetwork",
    "JoiningPeriod",
    "NodeStatus",
    "OptimizationReport",
    "ProtocolNode",
    "RealizedCSetTree",
    "RecoveryReport",
    "SizingPolicy",
    "Violation",
    "build_realized_tree",
    "build_template",
    "check_condition1",
    "check_condition2",
    "check_condition3",
    "check_consistency",
    "expected_join_noti",
    "expected_join_noti_upper_bound",
    "fail_nodes",
    "group_by_notification_suffix",
    "initialize_network",
    "leave_sequentially",
    "measure_stretch",
    "optimize_tables",
    "recover_from_failures",
    "joins_are_concurrent",
    "joins_are_dependent",
    "joins_are_independent",
    "joins_are_sequential",
    "level_distribution",
    "notification_set",
    "notification_suffix",
    "single_node_table",
    "theorem3_bound",
    "verify_reachability",
]
