"""The sans-io vocabulary: inputs a protocol machine consumes and
effects it emits.

A :class:`~repro.core.machine.JoinMachine` is a pure function of its
inputs: feed it :class:`MessageReceived` / :class:`TimerFired` events
and it returns a list of :class:`Effect` values -- messages to send,
timers to arm or cancel, status transitions to report.  Nothing in
this module performs IO, reads a clock, or touches an event loop; an
*environment* (a runtime, a test harness, a model checker) interprets
the effects however it likes.

The design follows the sans-io school (see Zave's "How to Make Chord
Correct" for why separating protocol logic from execution pays off in
a DHT): the protocol core stays deterministic and replayable, and the
same core runs under the virtual-time simulator, the asyncio runtime,
or a hand-rolled test loop.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Optional

from repro.ids.digits import NodeId
from repro.network.message import Message
from repro.protocol.status import NodeStatus


class Timer:
    """A timer the machine asked its environment to arm.

    Identity is object identity: the environment hands the same
    ``Timer`` back inside a :class:`TimerFired` input, and the machine
    matches it against what it armed.  Satisfies the
    :class:`~repro.runtime.interface.TimerHandle` contract
    (``cancelled`` + ``cancel()``), so machine-internal code can treat
    it exactly like a runtime timer handle.
    """

    __slots__ = ("action", "payload", "cancelled", "fired", "_on_cancel")

    def __init__(
        self,
        action: Callable[..., None],
        payload: Any = None,
        on_cancel: Optional[Callable[["Timer"], None]] = None,
    ):
        #: The machine-internal callback to run when the timer fires.
        self.action = action
        self.payload = payload
        self.cancelled = False
        self.fired = False
        self._on_cancel = on_cancel

    @property
    def name(self) -> str:
        """Debug label: the armed callback's name."""
        return getattr(self.action, "__name__", repr(self.action))

    def cancel(self) -> None:
        """Cancel the timer (idempotent; no-op once fired).

        Notifies the owning machine so a :class:`CancelTimer` effect
        reaches the environment.
        """
        if self.cancelled or self.fired:
            return
        self.cancelled = True
        if self._on_cancel is not None:
            self._on_cancel(self)

    def __repr__(self) -> str:
        state = (
            "cancelled" if self.cancelled
            else "fired" if self.fired
            else "armed"
        )
        return f"Timer({self.name}, {state})"


# ---------------------------------------------------------------------------
# inputs


@dataclass(frozen=True)
class MessageReceived:
    """A protocol message was delivered to the machine's node."""

    message: Message


@dataclass(frozen=True)
class TimerFired:
    """A previously armed timer's deadline elapsed."""

    timer: Timer


#: Anything a machine consumes.
Input = (MessageReceived, TimerFired)


# ---------------------------------------------------------------------------
# effects


@dataclass(frozen=True)
class Send:
    """Deliver ``message`` to ``dst``, reliably."""

    dst: NodeId
    message: Message


@dataclass(frozen=True)
class SendLossy:
    """Deliver ``message`` to ``dst`` if it is alive; drop otherwise.

    The recovery protocol's probe path: the machine tolerates the loss.
    """

    dst: NodeId
    message: Message


@dataclass(frozen=True)
class StartTimer:
    """Arm ``timer`` to fire ``delay`` time units after this effect.

    The environment must eventually feed back ``TimerFired(timer)``
    unless a :class:`CancelTimer` for the same object intervenes.
    """

    timer: Timer
    delay: float


@dataclass(frozen=True)
class CancelTimer:
    """Disarm ``timer``; the environment must not fire it afterwards."""

    timer: Timer


@dataclass(frozen=True)
class StatusChanged:
    """The node entered join status ``status`` at machine time ``at``.

    Informational (observability feeds on it); environments may ignore
    it.
    """

    node_id: NodeId
    status: NodeStatus
    at: float


#: Anything a machine emits.
Effect = (Send, SendLossy, StartTimer, CancelTimer, StatusChanged)


__all__ = [
    "CancelTimer",
    "Effect",
    "Input",
    "MessageReceived",
    "Send",
    "SendLossy",
    "StartTimer",
    "StatusChanged",
    "Timer",
    "TimerFired",
]
