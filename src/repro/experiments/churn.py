"""The churn lifecycle experiment (property P4, end to end).

A scripted run through every membership operation this repository
implements: concurrent joins, serialized voluntary leaves, crash
failures plus recovery, and a final optimization pass -- with a
consistency verdict after every phase.  Used by ``python -m repro
churn``, the churn example, and the lifecycle tests.

Like every campaign task, :func:`run_churn` is self-seeding (all
randomness derives from :class:`ChurnConfig`), so multi-seed churn
campaigns (:func:`run_churn_tasks`) fan out over any execution
backend -- serial, process pool, or a remote worker fleet -- with
identical results.  It is registered on the wire as ``"churn"``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace
from typing import List, Optional, Sequence, Tuple

from repro.exec.registry import remote_task
from repro.experiments.workloads import SMALL_TOPOLOGY, make_workload
from repro.optimize import measure_stretch, optimize_tables
from repro.protocol.leave import leave_sequentially
from repro.recovery import RecoveryReport, fail_nodes, recover_from_failures
from repro.topology.transit_stub import TransitStubParams


@dataclass(frozen=True)
class ChurnConfig:
    n: int = 150
    m: int = 50
    leaves: int = 30
    failures: int = 20
    base: int = 16
    num_digits: int = 8
    seed: int = 0
    use_topology: bool = True
    topology_params: Optional[TransitStubParams] = None


@dataclass
class PhaseOutcome:
    name: str
    members: int
    consistent: bool
    detail: str = ""

    def __str__(self) -> str:  # pragma: no cover - repr sugar
        suffix = f"  ({self.detail})" if self.detail else ""
        return (
            f"{self.name:<22} members={self.members:4d} "
            f"consistent={self.consistent}{suffix}"
        )


@dataclass
class ChurnResult:
    config: ChurnConfig
    phases: List[PhaseOutcome] = field(default_factory=list)
    recovery: Optional[RecoveryReport] = None
    stretch_before: float = 0.0
    stretch_after: float = 0.0

    @property
    def all_consistent(self) -> bool:
        return all(phase.consistent for phase in self.phases)


@remote_task("churn")
def run_churn(config: ChurnConfig) -> ChurnResult:
    """Run the full lifecycle and return per-phase outcomes."""
    rng = random.Random(config.seed)
    workload = make_workload(
        base=config.base,
        num_digits=config.num_digits,
        n=config.n,
        m=config.m,
        seed=config.seed,
        use_topology=config.use_topology,
        topology_params=config.topology_params,
    )
    net = workload.network
    result = ChurnResult(config)

    def checkpoint(name: str, detail: str = "") -> None:
        result.phases.append(
            PhaseOutcome(
                name,
                len(net.member_ids()),
                net.check_consistency().consistent,
                detail,
            )
        )

    checkpoint("bootstrap")

    workload.start_all_joins(at=net.runtime.now)
    workload.run()
    checkpoint(f"{config.m} concurrent joins")

    leavers = rng.sample(net.member_ids(), config.leaves)
    leave_sequentially(net, leavers)
    checkpoint(f"{config.leaves} leaves")

    victims = rng.sample(net.member_ids(), config.failures)
    fail_nodes(net, victims)
    result.recovery = recover_from_failures(net)
    checkpoint(
        f"{config.failures} crashes + recovery",
        detail=str(result.recovery),
    )

    if config.use_topology:
        before = measure_stretch(net, sample_pairs=150)
        optimize_tables(net)
        after = measure_stretch(net, sample_pairs=150)
        result.stretch_before = before.mean_stretch
        result.stretch_after = after.mean_stretch
        checkpoint(
            "optimization",
            detail=(
                f"stretch {before.mean_stretch:.2f} -> "
                f"{after.mean_stretch:.2f}"
            ),
        )
    return result


def churn_seeds(
    config: ChurnConfig, seeds: Sequence[int]
) -> List[ChurnConfig]:
    """Per-seed copies of ``config`` (a churn campaign's task list)."""
    return [replace(config, seed=seed) for seed in seeds]


def run_churn_tasks(
    configs: Sequence[ChurnConfig],
    jobs: int = 1,
    chunksize: Optional[int] = None,
    progress=None,
    backend=None,
) -> List[ChurnResult]:
    """Fan :func:`run_churn` over ``configs`` on the execution engine
    (``jobs`` processes, or an explicit
    :class:`repro.exec.ExecutionBackend`); results keep config order."""
    from repro.experiments.parallel import parallel_map

    return parallel_map(
        run_churn, list(configs), jobs=jobs, chunksize=chunksize,
        progress=progress, backend=backend,
    )
