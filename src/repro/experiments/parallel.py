"""Campaign fan-out: the experiment layer's door into the engine.

The paper's evaluation -- and every bench derived from it -- is a
multi-seed simulation campaign: the same event-driven run repeated over
``seed x config`` points, then aggregated.  Each run is CPU-bound pure
Python, so threads cannot help; campaigns fan out over *processes*
(one per core) or over a fleet of ``repro worker`` daemons instead.

The machinery lives in :mod:`repro.exec` -- the backend-pluggable
execution engine (:class:`~repro.exec.InlineBackend`,
:class:`~repro.exec.pool.ProcessPoolBackend`,
:class:`~repro.exec.remote.RemoteBackend`).  This module keeps the
experiment-facing surface:

* :func:`parallel_map` -- ``[fn(t) for t in tasks]`` on any backend.
  The historical ``jobs`` contract still holds (``jobs <= 1`` is the
  serial in-process loop, ``jobs > 1`` the process pool), and an
  explicit ``backend=`` overrides it.
* :func:`verified_parallel_map` -- runs the chosen backend *and* the
  inline reference and asserts equality: the engine's cross-backend
  determinism guarantee as an executable check.
* :class:`JoinTaskConfig` / :func:`run_join_task` -- the ready-made
  self-seeding concurrent-join task (CLI ``repro join``, the join-cost
  benches), registered on the wire as ``"join"``.

Design rules that keep any fan-out trustworthy:

* **Self-seeding tasks.**  A task is a picklable (and wire-codable)
  config that carries its own seed; the task function derives every
  RNG it uses from that config.  Workers never share RNG state, so
  results are independent of scheduling order, worker count *and
  backend*.
* **Deterministic merge.**  Results are reassembled strictly in task
  order, whatever order workers finish in (the shared
  :meth:`~repro.exec.ExecutionBackend.map` merge).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (
    Callable,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
    TypeVar,
)

from repro.exec import (
    ExecutionBackend,
    InlineBackend,
    ProgressFn,
    default_chunksize,
    resolve_backend,
    resolve_jobs,
)
from repro.exec.registry import remote_task
from repro.experiments.workloads import make_workload
from repro.protocol.sizing import SizingPolicy
from repro.topology.transit_stub import TransitStubParams

T = TypeVar("T")
R = TypeVar("R")

__all__ = [
    "JoinTaskConfig",
    "JoinTaskResult",
    "ProgressFn",
    "default_chunksize",
    "parallel_map",
    "resolve_jobs",
    "run_join_task",
    "run_join_tasks",
    "seeded_configs",
    "verified_parallel_map",
]


def parallel_map(
    fn: Callable[[T], R],
    tasks: Sequence[T],
    jobs: int = 1,
    chunksize: Optional[int] = None,
    progress: Optional[ProgressFn] = None,
    backend: Optional[ExecutionBackend] = None,
) -> List[R]:
    """``[fn(t) for t in tasks]``, computed on the chosen backend.

    With no explicit ``backend``, ``jobs`` picks one: ``jobs <= 1`` is
    the plain in-process loop (no executor, no pickling), anything
    else the process pool with ``fn`` and every task picklable.  An
    explicit ``backend`` (e.g. a :class:`~repro.exec.RemoteBackend`)
    wins over ``jobs`` and remains caller-owned (not closed here).
    Results are merged in task order, so the output is independent of
    the backend and of ``jobs`` whenever ``fn`` is a pure function of
    its task.  ``progress`` is invoked in this process after each
    completed task.
    """
    engine, owned = resolve_backend(backend, jobs=jobs, chunksize=chunksize)
    try:
        return engine.map(fn, tasks, progress=progress)
    finally:
        if owned:
            engine.close()


def verified_parallel_map(
    fn: Callable[[T], R],
    tasks: Sequence[T],
    jobs: int,
    chunksize: Optional[int] = None,
    backend: Optional[ExecutionBackend] = None,
) -> List[R]:
    """Run :func:`parallel_map` and assert it matches the serial path.

    Used by the cross-backend equivalence tests (and available as a
    belt-and-braces mode anywhere determinism is suspect): runs the
    tasks on the chosen backend *and* on the inline reference and
    raises :class:`AssertionError` on any mismatch -- the engine's
    "same results for any backend and any jobs count" guarantee as an
    executable property.
    """
    candidate = parallel_map(
        fn, tasks, jobs=jobs, chunksize=chunksize, backend=backend
    )
    reference = InlineBackend().map(fn, tasks)
    if candidate != reference:
        mismatches = [
            i
            for i, (c, r) in enumerate(zip(candidate, reference))
            if c != r
        ]
        label = backend.name if backend is not None else f"jobs={jobs}"
        raise AssertionError(
            f"{label} results diverge from serial at tasks {mismatches}"
        )
    return candidate


# ---------------------------------------------------------------------------
# Ready-made parallel task: one concurrent-join experiment per seed.


@dataclass(frozen=True)
class JoinTaskConfig:
    """One self-seeding concurrent-join simulation (CLI ``repro join``,
    the join-cost benches): ``n`` initial nodes, ``m`` simultaneous
    joiners, IDs from a ``(base, num_digits)`` space."""

    base: int = 16
    num_digits: int = 8
    n: int = 300
    m: int = 100
    seed: int = 0
    use_topology: bool = False
    topology_params: Optional[TransitStubParams] = None
    sizing: SizingPolicy = SizingPolicy.FULL


@dataclass(frozen=True)
class JoinTaskResult:
    """Aggregate outcome of one :class:`JoinTaskConfig` run.

    Carries everything the CLI and benches report; comparable with
    ``==`` so serial/parallel/remote equivalence can be asserted
    directly.
    """

    seed: int
    consistent: bool
    all_in_system: bool
    members: int
    mean_join_noti: float
    max_theorem3: int
    total_messages: int
    total_bytes: int
    message_counts: Tuple[Tuple[str, int], ...] = field(default=())

    def counts_dict(self) -> Dict[str, int]:
        """Per-type message counts as a plain dict."""
        return dict(self.message_counts)


@remote_task("join")
def run_join_task(config: JoinTaskConfig) -> JoinTaskResult:
    """Run one concurrent-join experiment to quiescence (picklable,
    wire-codable top-level task function for :func:`parallel_map`)."""
    workload = make_workload(
        base=config.base,
        num_digits=config.num_digits,
        n=config.n,
        m=config.m,
        seed=config.seed,
        use_topology=config.use_topology,
        topology_params=config.topology_params,
        sizing=config.sizing,
    )
    workload.start_all_joins(at=0.0)
    workload.run()
    net = workload.network
    report = net.check_consistency()
    counts = net.join_noti_counts()
    return JoinTaskResult(
        seed=config.seed,
        consistent=report.consistent,
        all_in_system=net.all_in_system(),
        members=len(net.member_ids()),
        mean_join_noti=sum(counts) / len(counts) if counts else 0.0,
        max_theorem3=max(net.theorem3_counts()),
        total_messages=net.stats.total_messages,
        total_bytes=net.stats.total_bytes,
        message_counts=tuple(sorted(net.stats.snapshot().items())),
    )


def run_join_tasks(
    configs: Sequence[JoinTaskConfig],
    jobs: int = 1,
    chunksize: Optional[int] = None,
    progress: Optional[ProgressFn] = None,
    backend: Optional[ExecutionBackend] = None,
) -> List[JoinTaskResult]:
    """Fan :func:`run_join_task` over ``configs``."""
    return parallel_map(
        run_join_task, configs, jobs=jobs, chunksize=chunksize,
        progress=progress, backend=backend,
    )


def seeded_configs(
    config: JoinTaskConfig, seeds: Sequence[int]
) -> List[JoinTaskConfig]:
    """Copies of ``config`` differing only in seed (a seed sweep)."""
    from dataclasses import replace

    return [replace(config, seed=seed) for seed in seeds]
