"""Parallel experiment engine: fan simulation tasks across processes.

The paper's evaluation -- and every bench derived from it -- is a
multi-seed simulation campaign: the same event-driven run repeated over
``seed x config`` points, then aggregated.  Each run is CPU-bound pure
Python, so threads cannot help; this module fans tasks out over a
:class:`concurrent.futures.ProcessPoolExecutor` instead.

Design rules that keep parallel runs trustworthy:

* **Self-seeding tasks.**  A task is a picklable config that carries
  its own seed; the task function derives every RNG it uses from that
  config (as :func:`repro.experiments.fig15b.run_fig15b` and
  :func:`run_join_task` do).  Worker processes never share RNG state,
  so results are independent of scheduling order and of ``jobs``.
* **Deterministic merge.**  Results are reassembled strictly in task
  order, whatever order workers finish in.  ``parallel_map(fn, tasks,
  jobs=k)`` therefore returns exactly ``[fn(t) for t in tasks]`` for
  any ``k`` -- :func:`verified_parallel_map` asserts that equality by
  also running the serial path.
* **Chunked dispatch.**  Tasks are submitted in contiguous chunks to
  amortize pickling and inter-process latency; chunking never changes
  results, only scheduling granularity.

``jobs <= 1`` short-circuits to a plain in-process loop -- byte-for-byte
the serial path, with no executor or pickling involved.
"""

from __future__ import annotations

import os
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
    TypeVar,
)

from repro.experiments.workloads import make_workload
from repro.protocol.sizing import SizingPolicy
from repro.topology.transit_stub import TransitStubParams

T = TypeVar("T")
R = TypeVar("R")

#: Progress callback: called as ``progress(done, total)`` from the
#: coordinating process after every completed task.
ProgressFn = Callable[[int, int], None]


def resolve_jobs(jobs: Optional[int]) -> int:
    """Normalize a ``--jobs`` value: None or 0 means one worker per
    available CPU; negative values are rejected."""
    if jobs is None or jobs == 0:
        return os.cpu_count() or 1
    if jobs < 0:
        raise ValueError(f"jobs must be >= 0, got {jobs}")
    return jobs


def default_chunksize(num_tasks: int, jobs: int) -> int:
    """Chunk so each worker sees a handful of submissions (4 per worker
    when tasks allow), balancing dispatch overhead against stragglers."""
    if num_tasks <= 0:
        return 1
    return max(1, num_tasks // (jobs * 4))


def _run_chunk(
    fn: Callable[[T], R], start: int, chunk: Sequence[T]
) -> Tuple[int, List[R]]:
    """Worker-side body: run one contiguous chunk, tagged with its
    starting task index so the coordinator can merge deterministically."""
    return start, [fn(task) for task in chunk]


#: Worker-global task function, installed once per worker process by
#: :func:`_init_worker` so chunk submissions carry only ``(start,
#: tasks)`` -- the function (and anything closed over by a partial) is
#: pickled once per *worker* instead of once per *chunk*.
_worker_fn: Optional[Callable[..., Any]] = None


def _init_worker(fn: Callable[[T], R]) -> None:
    """Pool initializer: pin the task function in this worker."""
    global _worker_fn
    _worker_fn = fn


def _run_chunk_initialized(
    start: int, chunk: Sequence[T]
) -> Tuple[int, List[R]]:
    """Worker-side body using the function installed by
    :func:`_init_worker` (see :func:`parallel_map`)."""
    fn = _worker_fn
    assert fn is not None, "worker used before initializer ran"
    return start, [fn(task) for task in chunk]


def parallel_map(
    fn: Callable[[T], R],
    tasks: Sequence[T],
    jobs: int = 1,
    chunksize: Optional[int] = None,
    progress: Optional[ProgressFn] = None,
) -> List[R]:
    """``[fn(t) for t in tasks]``, computed on ``jobs`` processes.

    ``fn`` and every task must be picklable (top-level function plus
    self-seeding config objects).  Results are merged in task order, so
    the output is independent of ``jobs`` whenever ``fn`` is a pure
    function of its task.  ``progress`` is invoked in this process
    after each task completes (serial path: after every ``fn`` call;
    parallel path: chunk completions report every task in the chunk).
    """
    jobs = resolve_jobs(jobs)
    total = len(tasks)
    if total == 0:
        return []
    if jobs <= 1 or total == 1:
        results: List[R] = []
        for index, task in enumerate(tasks):
            results.append(fn(task))
            if progress is not None:
                progress(index + 1, total)
        return results

    if chunksize is None:
        chunksize = default_chunksize(total, jobs)
    chunks = [
        (start, tasks[start:start + chunksize])
        for start in range(0, total, chunksize)
    ]
    merged: Dict[int, List[R]] = {}
    done = 0
    with ProcessPoolExecutor(
        max_workers=min(jobs, len(chunks)),
        initializer=_init_worker,
        initargs=(fn,),
    ) as pool:
        pending = {
            pool.submit(_run_chunk_initialized, start, chunk)
            for start, chunk in chunks
        }
        while pending:
            finished, pending = wait(pending, return_when=FIRST_COMPLETED)
            for future in finished:
                start, chunk_results = future.result()
                merged[start] = chunk_results
                done += len(chunk_results)
                if progress is not None:
                    progress(done, total)
    out: List[R] = []
    for start in sorted(merged):
        out.extend(merged[start])
    if len(out) != total:  # pragma: no cover - engine invariant
        raise RuntimeError(
            f"parallel merge produced {len(out)} results for {total} tasks"
        )
    return out


def verified_parallel_map(
    fn: Callable[[T], R],
    tasks: Sequence[T],
    jobs: int,
    chunksize: Optional[int] = None,
) -> List[R]:
    """Run :func:`parallel_map` and assert it matches the serial path.

    Used by the equivalence tests (and available as a belt-and-braces
    mode anywhere determinism is suspect): runs the tasks both ways and
    raises :class:`AssertionError` on any mismatch.
    """
    parallel = parallel_map(fn, tasks, jobs=jobs, chunksize=chunksize)
    serial = parallel_map(fn, tasks, jobs=1)
    if parallel != serial:
        mismatches = [
            i for i, (p, s) in enumerate(zip(parallel, serial)) if p != s
        ]
        raise AssertionError(
            f"parallel results diverge from serial at tasks {mismatches}"
        )
    return parallel


# ---------------------------------------------------------------------------
# Ready-made parallel task: one concurrent-join experiment per seed.


@dataclass(frozen=True)
class JoinTaskConfig:
    """One self-seeding concurrent-join simulation (CLI ``repro join``,
    the join-cost benches): ``n`` initial nodes, ``m`` simultaneous
    joiners, IDs from a ``(base, num_digits)`` space."""

    base: int = 16
    num_digits: int = 8
    n: int = 300
    m: int = 100
    seed: int = 0
    use_topology: bool = False
    topology_params: Optional[TransitStubParams] = None
    sizing: SizingPolicy = SizingPolicy.FULL


@dataclass(frozen=True)
class JoinTaskResult:
    """Aggregate outcome of one :class:`JoinTaskConfig` run.

    Carries everything the CLI and benches report; comparable with
    ``==`` so serial/parallel equivalence can be asserted directly.
    """

    seed: int
    consistent: bool
    all_in_system: bool
    members: int
    mean_join_noti: float
    max_theorem3: int
    total_messages: int
    total_bytes: int
    message_counts: Tuple[Tuple[str, int], ...] = field(default=())

    def counts_dict(self) -> Dict[str, int]:
        """Per-type message counts as a plain dict."""
        return dict(self.message_counts)


def run_join_task(config: JoinTaskConfig) -> JoinTaskResult:
    """Run one concurrent-join experiment to quiescence (picklable
    top-level task function for :func:`parallel_map`)."""
    workload = make_workload(
        base=config.base,
        num_digits=config.num_digits,
        n=config.n,
        m=config.m,
        seed=config.seed,
        use_topology=config.use_topology,
        topology_params=config.topology_params,
        sizing=config.sizing,
    )
    workload.start_all_joins(at=0.0)
    workload.run()
    net = workload.network
    report = net.check_consistency()
    counts = net.join_noti_counts()
    return JoinTaskResult(
        seed=config.seed,
        consistent=report.consistent,
        all_in_system=net.all_in_system(),
        members=len(net.member_ids()),
        mean_join_noti=sum(counts) / len(counts) if counts else 0.0,
        max_theorem3=max(net.theorem3_counts()),
        total_messages=net.stats.total_messages,
        total_bytes=net.stats.total_bytes,
        message_counts=tuple(sorted(net.stats.snapshot().items())),
    )


def run_join_tasks(
    configs: Sequence[JoinTaskConfig],
    jobs: int = 1,
    chunksize: Optional[int] = None,
    progress: Optional[ProgressFn] = None,
) -> List[JoinTaskResult]:
    """Fan :func:`run_join_task` over ``configs``."""
    return parallel_map(
        run_join_task, configs, jobs=jobs, chunksize=chunksize,
        progress=progress,
    )


def seeded_configs(
    config: JoinTaskConfig, seeds: Sequence[int]
) -> List[JoinTaskConfig]:
    """Copies of ``config`` differing only in seed (a seed sweep)."""
    from dataclasses import replace

    return [replace(config, seed=seed) for seed in seeds]
