"""Figure 1: the example neighbor table of node 21233 (b=4, d=5).

The paper's figure shows the table of node ``21233`` in some network.
The exact neighbor choices are arbitrary (any member of the right
suffix set is valid); we rebuild a network containing the node IDs
readable off the figure, construct consistent tables, and render
21233's table in the figure's layout.  A test asserts that the figure's
entries are *valid* choices for our network, and that our table has
exactly the same fill pattern (an entry is filled iff the figure shows
one).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.ids.digits import NodeId
from repro.ids.idspace import IdSpace
from repro.routing.oracle import build_consistent_tables
from repro.routing.table import NeighborTable, format_table

#: The figure's (level, digit) -> neighbor ID, as printed.  An absent
#: position means the figure shows an empty entry (no node with the
#: required suffix exists in the example network).
FIGURE1_ENTRIES: Dict[Tuple[int, int], str] = {
    (0, 0): "01100",
    (0, 1): "33121",
    (0, 2): "12232",
    (0, 3): "21233",
    (1, 0): "22303",
    (1, 1): "13113",
    (1, 2): "00123",
    (1, 3): "21233",
    (2, 0): "31033",
    (2, 1): "03133",
    (2, 2): "21233",
    (3, 0): "10233",
    (3, 1): "21233",
    (3, 3): "03233",
    (4, 0): "01233",
    (4, 1): "11233",
    (4, 2): "21233",
    (4, 3): "31233",
}


def figure1_network_ids(idspace: IdSpace) -> List[NodeId]:
    """The distinct node IDs appearing in Figure 1's table."""
    names = sorted({name for name in FIGURE1_ENTRIES.values()})
    return [idspace.from_string(name) for name in names]


def figure1_example() -> Tuple[NeighborTable, str]:
    """Build the Figure 1 network and return (21233's table, rendering)."""
    idspace = IdSpace(base=4, num_digits=5)
    members = figure1_network_ids(idspace)
    tables = build_consistent_tables(members)
    owner = idspace.from_string("21233")
    table = tables[owner]
    return table, format_table(table)
