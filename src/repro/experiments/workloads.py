"""Workload generation for the experiments.

Builds the paper's simulation setups: ``n`` initial nodes forming a
consistent network plus ``m`` joiners, with IDs drawn uniformly from a
``(b, d)`` space, over either a uniform-latency model (fast) or a full
transit-stub topology with randomly attached end-hosts (the paper's
GT-ITM setup).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.ids.digits import NodeId
from repro.ids.idspace import IdSpace
from repro.obs.instrument import Observability
from repro.protocol.join import JoinProtocolNetwork
from repro.protocol.sizing import SizingPolicy
from repro.runtime.interface import Runtime
from repro.topology.attachment import (
    HostAttachment,
    LatencyModel,
    TopologyLatencyModel,
    UniformLatencyModel,
)
from repro.topology.latency import HierarchicalLatency
from repro.topology.transit_stub import (
    TransitStubParams,
    generate_transit_stub,
)

#: A scaled-down transit-stub parameterization for tests and benches
#: (same code path as the full 8320-router topology, ~410 routers).
SMALL_TOPOLOGY = TransitStubParams(
    num_transit_domains=2,
    transit_domain_size=3,
    stubs_per_transit_router=3,
    stub_size=22,
)


@dataclass
class Workload:
    """A ready-to-run experiment: network plus joiner schedule."""

    idspace: IdSpace
    network: JoinProtocolNetwork
    initial_ids: List[NodeId]
    joiner_ids: List[NodeId]

    def start_all_joins(self, at: float = 0.0) -> None:
        """Start every join at the same instant (the paper: "all joins
        start at the same time").  Batched through
        :meth:`~repro.protocol.join.JoinProtocolNetwork.start_joins`,
        with identical gateway draws and firing order."""
        self.network.start_joins(self.joiner_ids, at=at)

    def run(self, wall_budget: Optional[float] = None) -> None:
        """Run the underlying network to quiescence.

        ``wall_budget`` (seconds) bounds wall-clock runtimes; see
        :meth:`repro.protocol.join.JoinProtocolNetwork.run`.
        """
        self.network.run(wall_budget=wall_budget)


def sample_ids(
    idspace: IdSpace, n: int, m: int, rng: random.Random
) -> Tuple[List[NodeId], List[NodeId]]:
    """``n`` initial IDs and ``m`` joiner IDs, all distinct."""
    ids = idspace.random_unique_ids(n + m, rng)
    return ids[:n], ids[n:]


#: Generated-topology memo: ``(params, rng state at entry)`` ->
#: ``(topology, rng state after generation, shared router paths)``.
#: Multi-seed campaigns (and repeated bench rounds) regenerate the
#: identical topology over and over -- same params, same derived
#: seed -- and router-path state (core all-pairs Dijkstra, stub
#: caches, the pair memo) is a pure function of the topology, so both
#: are reused.  The *post-generation* RNG state is replayed on a hit,
#: leaving every later draw (host attachment) byte-identical to a
#: cache-free run.  Bounded FIFO; per-process (fork-started workers
#: inherit a warm cache).
_TOPOLOGY_CACHE: dict = {}
_TOPOLOGY_CACHE_MAX = 16


def make_latency_model(
    hosts: List[NodeId],
    rng: random.Random,
    use_topology: bool,
    topology_params: Optional[TransitStubParams] = None,
) -> LatencyModel:
    """Uniform-jitter latencies, or a transit-stub topology with the
    given hosts attached (``topology_params`` defaults to the scaled
    :data:`SMALL_TOPOLOGY`)."""
    if not use_topology:
        return UniformLatencyModel(rng, low=1.0, high=100.0)
    params = topology_params if topology_params is not None else SMALL_TOPOLOGY
    key = (params, rng.getstate())
    cached = _TOPOLOGY_CACHE.get(key)
    if cached is None:
        topology = generate_transit_stub(params, rng)
        paths = HierarchicalLatency(topology)
        if len(_TOPOLOGY_CACHE) >= _TOPOLOGY_CACHE_MAX:
            _TOPOLOGY_CACHE.pop(next(iter(_TOPOLOGY_CACHE)))
        _TOPOLOGY_CACHE[key] = (topology, rng.getstate(), paths)
    else:
        topology, state_after, paths = cached
        rng.setstate(state_after)
    attachment = HostAttachment(topology, hosts, rng)
    return TopologyLatencyModel(topology, attachment, paths=paths)


def make_workload(
    base: int,
    num_digits: int,
    n: int,
    m: int,
    seed: int = 0,
    use_topology: bool = False,
    topology_params: Optional[TransitStubParams] = None,
    sizing: SizingPolicy = SizingPolicy.FULL,
    obs: Optional[Observability] = None,
    runtime: Optional["Runtime"] = None,
) -> Workload:
    """Build the paper's setup: an ``n``-node consistent network (via
    the oracle) and ``m`` joiners ready to start.

    Pass ``obs`` to instrument the run (phase spans, message events,
    registry-backed stats); see :mod:`repro.obs`.  Pass ``runtime`` to
    run the workload on a non-default execution substrate (e.g.
    ``create_runtime("asyncio")``).
    """
    idspace = IdSpace(base, num_digits)
    rng = random.Random(f"workload-{seed}")
    initial_ids, joiner_ids = sample_ids(idspace, n, m, rng)
    latency = make_latency_model(
        initial_ids + joiner_ids,
        random.Random(f"latency-{seed}"),
        use_topology,
        topology_params,
    )
    network = JoinProtocolNetwork.from_oracle(
        idspace,
        initial_ids,
        latency_model=latency,
        sizing=sizing,
        seed=seed,
        obs=obs,
        runtime=runtime,
    )
    return Workload(idspace, network, initial_ids, joiner_ids)
