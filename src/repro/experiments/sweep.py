"""Multi-seed sweeps and joining-period statistics.

Single simulation runs are noisy; the sweep driver repeats an
experiment across seeds and aggregates (mean, standard deviation,
envelope) so benches can report statistically steadier numbers.  Also
provides joining-period analytics (Definition 3.1's ``[t^b, t^e]``),
which the paper's evaluation does not show but which characterize how
long a node stays a T-node under concurrent load.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Callable, Dict, List, Optional, Sequence

from repro.exec import ExecutionBackend
from repro.experiments.fig15b import Fig15bConfig, Fig15bResult, run_fig15b
from repro.experiments.harness import Summary, summarize
from repro.experiments.parallel import ProgressFn, parallel_map


@dataclass
class SweepStats:
    """Aggregate of one scalar metric across seeds."""

    label: str
    per_seed: List[float]

    @property
    def mean(self) -> float:
        return sum(self.per_seed) / len(self.per_seed)

    @property
    def stddev(self) -> float:
        mean = self.mean
        return math.sqrt(
            sum((v - mean) ** 2 for v in self.per_seed) / len(self.per_seed)
        )

    @property
    def minimum(self) -> float:
        return min(self.per_seed)

    @property
    def maximum(self) -> float:
        return max(self.per_seed)

    def __str__(self) -> str:  # pragma: no cover - repr sugar
        return (
            f"{self.label}: {self.mean:.3f} +/- {self.stddev:.3f} "
            f"[{self.minimum:.3f}, {self.maximum:.3f}] "
            f"({len(self.per_seed)} seeds)"
        )


@dataclass
class Fig15bSweep:
    """Aggregated Figure 15(b) results across seeds."""

    config: Fig15bConfig
    results: List[Fig15bResult]

    @property
    def mean_join_noti(self) -> SweepStats:
        return SweepStats(
            "mean JoinNotiMsg",
            [r.mean_join_noti for r in self.results],
        )

    @property
    def all_consistent(self) -> bool:
        return all(r.consistent for r in self.results)

    @property
    def theorem5_bound(self) -> float:
        return self.results[0].theorem5_bound

    @property
    def bound_never_exceeded(self) -> bool:
        return all(
            r.mean_join_noti < r.theorem5_bound for r in self.results
        )


def sweep_configs(
    config: Fig15bConfig, seeds: Sequence[int]
) -> List[Fig15bConfig]:
    """Per-seed copies of ``config`` (the sweep's task list)."""
    return [replace(config, seed=seed) for seed in seeds]


def sweep_fig15b(
    config: Fig15bConfig,
    seeds: Sequence[int],
    jobs: int = 1,
    chunksize: Optional[int] = None,
    progress: Optional[ProgressFn] = None,
    backend: Optional[ExecutionBackend] = None,
) -> Fig15bSweep:
    """Run one Figure 15(b) configuration across several seeds.

    ``jobs > 1`` fans the per-seed runs over worker processes via
    :func:`repro.experiments.parallel.parallel_map`; an explicit
    ``backend`` (e.g. a :class:`repro.exec.RemoteBackend` fleet)
    overrides ``jobs``.  Each run derives all randomness from its own
    config, so the results -- and any aggregate over them -- are
    identical for every ``jobs`` value and every backend.
    """
    results = parallel_map(
        run_fig15b,
        sweep_configs(config, seeds),
        jobs=jobs,
        chunksize=chunksize,
        progress=progress,
        backend=backend,
    )
    return Fig15bSweep(config, results)


def joining_period_stats(network) -> Summary:
    """Lengths of the joining periods ``t^e − t^b`` (Definition 3.1)
    of every joiner in ``network``."""
    durations = []
    for joiner in network.joiner_ids:
        node = network.node(joiner)
        if node.join_began_at is None or node.became_s_at is None:
            raise ValueError(f"{joiner} has not completed its join")
        durations.append(node.became_s_at - node.join_began_at)
    return summarize(durations)
