"""Dependency-free ASCII charts for the experiment harness.

Renders the paper's two figure styles in a terminal: multi-series line
charts (Figure 15(a)) and step CDFs (Figure 15(b)).  Pure-text output
keeps the repository free of plotting dependencies while still giving
``python -m repro fig15a``/``fig15b`` figure-shaped output.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

Series = Sequence[Tuple[float, float]]

#: Glyphs assigned to successive series.
MARKERS = "*+ox#@%&"


def _scale(
    value: float, low: float, high: float, cells: int
) -> int:
    if high == low:
        return 0
    position = (value - low) / (high - low)
    return min(cells - 1, max(0, round(position * (cells - 1))))


def ascii_chart(
    series_by_label: Dict[str, Series],
    width: int = 64,
    height: int = 16,
    x_label: str = "",
    y_label: str = "",
    y_min: Optional[float] = None,
    y_max: Optional[float] = None,
) -> str:
    """A multi-series scatter/line chart on a character grid."""
    if not series_by_label:
        raise ValueError("need at least one series")
    all_points = [
        point
        for series in series_by_label.values()
        for point in series
    ]
    if not all_points:
        raise ValueError("series contain no points")
    xs = [p[0] for p in all_points]
    ys = [p[1] for p in all_points]
    x_low, x_high = min(xs), max(xs)
    y_low = min(ys) if y_min is None else y_min
    y_high = max(ys) if y_max is None else y_max
    if y_high == y_low:
        y_high = y_low + 1.0

    grid = [[" "] * width for _ in range(height)]
    for index, (label, series) in enumerate(series_by_label.items()):
        marker = MARKERS[index % len(MARKERS)]
        for x, y in series:
            col = _scale(x, x_low, x_high, width)
            row = height - 1 - _scale(y, y_low, y_high, height)
            grid[row][col] = marker

    lines: List[str] = []
    if y_label:
        lines.append(y_label)
    for row_index, row in enumerate(grid):
        value = y_high - (y_high - y_low) * row_index / (height - 1)
        lines.append(f"{value:>8.2f} |" + "".join(row))
    lines.append(" " * 9 + "+" + "-" * width)
    left = f"{x_low:g}"
    right = f"{x_high:g}"
    padding = width - len(left) - len(right)
    lines.append(
        " " * 10 + left + " " * max(1, padding) + right
        + (f"   {x_label}" if x_label else "")
    )
    legend = "   ".join(
        f"{MARKERS[i % len(MARKERS)]} {label}"
        for i, label in enumerate(series_by_label)
    )
    lines.append(" " * 10 + legend)
    return "\n".join(lines)


def cdf_chart(
    samples_by_label: Dict[str, Sequence[int]],
    width: int = 64,
    height: int = 16,
    x_max: Optional[int] = None,
) -> str:
    """Step-CDF chart (the Figure 15(b) style: y in [0, 1])."""
    series: Dict[str, Series] = {}
    for label, samples in samples_by_label.items():
        if not samples:
            raise ValueError(f"series {label!r} is empty")
        ordered = sorted(samples)
        limit = x_max if x_max is not None else ordered[-1]
        points: List[Tuple[float, float]] = []
        n = len(ordered)
        for x in range(0, limit + 1):
            covered = sum(1 for s in ordered if s <= x)
            points.append((x, covered / n))
        series[label] = points
    return ascii_chart(
        series,
        width=width,
        height=height,
        x_label="#JoinNotiMsg",
        y_label="cumulative fraction",
        y_min=0.0,
        y_max=1.0,
    )
