"""Figure 15(a): theoretical upper bound of E(J) vs network size.

The paper plots the Theorem 5 upper bound for ``n`` from 10,000 to
100,000 with four configurations: ``m`` in {500, 1000} and ``d`` in
{8, 40}, ``b = 16``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.analysis.expected_cost import expected_join_noti_upper_bound
from repro.exec.registry import remote_task


@dataclass(frozen=True)
class Fig15aConfig:
    m: int
    base: int
    num_digits: int

    @property
    def label(self) -> str:
        return f"m={self.m}, b={self.base}, d={self.num_digits}"


#: The four curves of Figure 15(a), in legend order.
FIG15A_CONFIGS: Tuple[Fig15aConfig, ...] = (
    Fig15aConfig(m=500, base=16, num_digits=40),
    Fig15aConfig(m=1000, base=16, num_digits=40),
    Fig15aConfig(m=500, base=16, num_digits=8),
    Fig15aConfig(m=1000, base=16, num_digits=8),
)

#: The paper's x axis.
FIG15A_N_VALUES: Tuple[int, ...] = tuple(
    range(10_000, 100_001, 10_000)
)


def figure15a_series(
    config: Fig15aConfig,
    n_values: Sequence[int] = FIG15A_N_VALUES,
) -> List[Tuple[int, float]]:
    """One curve: ``(n, upper bound of E(J))`` points."""
    return [
        (
            n,
            expected_join_noti_upper_bound(
                n, config.m, config.base, config.num_digits
            ),
        )
        for n in n_values
    ]


@remote_task("fig15a-series")
def _series_task(
    task: Tuple[Fig15aConfig, Tuple[int, ...]]
) -> List[Tuple[int, float]]:
    """Picklable, wire-codable per-curve task for the execution
    engine."""
    config, n_values = task
    return figure15a_series(config, n_values)


def figure15a_all_series(
    configs: Sequence[Fig15aConfig] = FIG15A_CONFIGS,
    n_values: Sequence[int] = FIG15A_N_VALUES,
    jobs: int = 1,
    backend=None,
) -> List[List[Tuple[int, float]]]:
    """All curves, one per config, optionally computed across worker
    processes or an explicit :class:`repro.exec.ExecutionBackend` (the
    closed-form bound is cheap at the paper's scale but grows with
    ``n`` sweeps; the engine keeps curve order regardless)."""
    from repro.experiments.parallel import parallel_map

    return parallel_map(
        _series_task,
        [(config, tuple(n_values)) for config in configs],
        jobs=jobs,
        backend=backend,
    )


def render_figure15a(
    configs: Sequence[Fig15aConfig] = FIG15A_CONFIGS,
    n_values: Sequence[int] = FIG15A_N_VALUES,
    jobs: int = 1,
) -> str:
    """Text table with one column per curve (the figure's four lines)."""
    header = "       n  " + "  ".join(f"{c.label:>18}" for c in configs)
    lines = [header]
    series = [
        dict(curve)
        for curve in figure15a_all_series(configs, n_values, jobs=jobs)
    ]
    for n in n_values:
        row = f"{n:>8}  " + "  ".join(
            f"{s[n]:>18.3f}" for s in series
        )
        lines.append(row)
    return "\n".join(lines)
