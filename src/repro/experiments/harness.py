"""Shared experiment utilities: CDFs, summary statistics, and
rendering helpers for observability output (metrics tables, per-phase
join latency breakdowns)."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import Tracer


class Cdf:
    """Empirical cumulative distribution of integer samples.

    Figure 15(b) plots the cumulative distribution of the number of
    JoinNotiMsg sent by each joining node; this class reproduces those
    series.
    """

    def __init__(self, samples: Sequence[int]):
        if not samples:
            raise ValueError("need at least one sample")
        self.samples = sorted(samples)
        self.n = len(self.samples)

    def at(self, value: float) -> float:
        """Fraction of samples <= ``value``."""
        lo, hi = 0, self.n
        while lo < hi:
            mid = (lo + hi) // 2
            if self.samples[mid] <= value:
                lo = mid + 1
            else:
                hi = mid
        return lo / self.n

    def series(self) -> List[Tuple[int, float]]:
        """Points ``(value, F(value))`` at each distinct sample value."""
        out: List[Tuple[int, float]] = []
        seen = 0
        previous = None
        for sample in self.samples:
            seen += 1
            if sample != previous and previous is not None:
                out.append((previous, (seen - 1) / self.n))
            previous = sample
        out.append((previous, 1.0))
        return out

    def quantile(self, q: float) -> int:
        """Smallest sample value with cumulative fraction >= ``q``."""
        if not 0 <= q <= 1:
            raise ValueError("q must be in [0, 1]")
        index = min(self.n - 1, max(0, math.ceil(q * self.n) - 1))
        return self.samples[index]

    @property
    def mean(self) -> float:
        return sum(self.samples) / self.n

    @property
    def max(self) -> int:
        return self.samples[-1]


@dataclass
class Summary:
    """Basic descriptive statistics for a sample of counts."""

    count: int
    mean: float
    minimum: float
    maximum: float
    stddev: float

    def __str__(self) -> str:  # pragma: no cover - repr sugar
        return (
            f"n={self.count} mean={self.mean:.3f} min={self.minimum} "
            f"max={self.maximum} sd={self.stddev:.3f}"
        )


def summarize(samples: Sequence[float]) -> Summary:
    """Descriptive statistics (count/mean/min/max/stddev) of samples."""
    if not samples:
        raise ValueError("need at least one sample")
    n = len(samples)
    mean = sum(samples) / n
    variance = sum((s - mean) ** 2 for s in samples) / n
    return Summary(
        count=n,
        mean=mean,
        minimum=min(samples),
        maximum=max(samples),
        stddev=math.sqrt(variance),
    )


def render_cdf_table(
    cdf: Cdf, points: Sequence[int] = (0, 1, 2, 5, 10, 15, 20, 30, 40, 50)
) -> str:
    """Text rendering of a CDF at fixed x positions (Figure 15(b)'s
    x-axis runs 0..50)."""
    lines = ["  #JoinNotiMsg   cumulative fraction"]
    for point in points:
        lines.append(f"  {point:>12}   {cdf.at(point):.4f}")
    return "\n".join(lines)


def render_metrics_table(
    registry: MetricsRegistry, prefix: Optional[str] = None
) -> str:
    """Text rendering of a registry snapshot, sorted by metric name.

    ``prefix`` filters to metrics whose flat name starts with it
    (e.g. ``"messages_sent"`` for the per-type message accounting).
    """
    snapshot = registry.snapshot()
    keys = sorted(k for k in snapshot if prefix is None or k.startswith(prefix))
    if not keys:
        return "  (no metrics)"
    width = max(len(k) for k in keys)
    lines = []
    for key in keys:
        value = snapshot[key]
        rendered = f"{value:g}" if isinstance(value, float) else str(value)
        lines.append(f"  {key:<{width}}   {rendered}")
    return "\n".join(lines)


def join_phase_durations(tracer: Tracer) -> Dict[str, Summary]:
    """Per-phase duration summaries from a join trace.

    Groups the tracer's finished ``phase:*`` spans by phase name and
    summarizes their virtual-time durations -- the "where does the
    joining period go" breakdown that aggregate counters cannot give.
    """
    by_phase: Dict[str, List[float]] = {}
    for span in tracer.spans():
        if not span.name.startswith("phase:") or span.duration is None:
            continue
        by_phase.setdefault(span.name[len("phase:"):], []).append(
            span.duration
        )
    return {
        phase: summarize(durations)
        for phase, durations in sorted(by_phase.items())
    }


def render_phase_table(tracer: Tracer) -> str:
    """Text rendering of :func:`join_phase_durations`."""
    durations = join_phase_durations(tracer)
    if not durations:
        return "  (no phase spans)"
    lines = ["  phase        n    mean      max"]
    for phase, summary in durations.items():
        lines.append(
            f"  {phase:<10} {summary.count:>3}  {summary.mean:>8.2f} "
            f"{summary.maximum:>8.2f}"
        )
    return "\n".join(lines)
