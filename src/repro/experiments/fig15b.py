"""Figure 15(b): simulated distribution of JoinNotiMsg per joiner.

The paper's setups: a GT-ITM topology with 8320 routers; either 4096
end-hosts (3096 form the initial consistent network, 1000 join) or 8192
end-hosts (7192 initial, 1000 join); ``b = 16``, ``d`` in {8, 40}; all
joins start at the same time.  Reported: the CDF of the number of
JoinNotiMsg sent per joining node, its average (6.117 / 6.051 / 5.026 /
5.399) and the Theorem 5 bound (8.001 / 8.001 / 6.986 / 6.986).

:func:`run_fig15b` reproduces one configuration; the default
parameters are scaled down so tests and benches stay fast, while
``examples/figure15b_full.py`` runs the paper-scale settings.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.analysis.expected_cost import (
    expected_join_noti_upper_bound,
    theorem3_bound,
)
from repro.exec.registry import remote_task
from repro.experiments.harness import Cdf, summarize
from repro.experiments.workloads import make_workload
from repro.topology.transit_stub import TransitStubParams


@dataclass(frozen=True)
class Fig15bConfig:
    """One Figure 15(b) configuration.

    The paper-scale configurations are ``n`` in {3096, 7192},
    ``m = 1000``, ``base = 16``, ``num_digits`` in {8, 40}, with the
    default (8320-router) topology.
    """

    n: int = 300
    m: int = 100
    base: int = 16
    num_digits: int = 8
    seed: int = 0
    use_topology: bool = True
    #: None selects the scaled-down default topology of
    #: :data:`repro.experiments.workloads.SMALL_TOPOLOGY`; the paper
    #: configs pass ``TransitStubParams()`` (8320 routers).
    topology_params: Optional[TransitStubParams] = None

    @property
    def label(self) -> str:
        return (
            f"n={self.n}, m={self.m}, b={self.base}, d={self.num_digits}"
        )


@dataclass
class Fig15bResult:
    config: Fig15bConfig
    join_noti_counts: List[int]
    theorem5_bound: float
    theorem3_violations: int
    consistent: bool
    all_in_system: bool
    total_messages: int
    message_counts: dict

    @property
    def cdf(self) -> Cdf:
        return Cdf(self.join_noti_counts)

    @property
    def mean_join_noti(self) -> float:
        return sum(self.join_noti_counts) / len(self.join_noti_counts)

    def summary(self) -> str:
        """One-line human-readable result summary."""
        stats = summarize(self.join_noti_counts)
        return (
            f"{self.config.label}: mean JoinNotiMsg {stats.mean:.3f} "
            f"(Theorem 5 bound {self.theorem5_bound:.3f}), max {stats.maximum}, "
            f"consistent={self.consistent}"
        )


@remote_task("fig15b")
def run_fig15b(config: Fig15bConfig) -> Fig15bResult:
    """Run one Figure 15(b) configuration to quiescence (registered as
    the ``"fig15b"`` wire task for remote sweep workers)."""
    workload = make_workload(
        base=config.base,
        num_digits=config.num_digits,
        n=config.n,
        m=config.m,
        seed=config.seed,
        use_topology=config.use_topology,
        topology_params=config.topology_params,
    )
    workload.start_all_joins(at=0.0)
    workload.run()

    network = workload.network
    counts = network.join_noti_counts()
    bound = theorem3_bound(config.num_digits)
    violations = sum(
        1 for c in network.theorem3_counts() if c > bound
    )
    report = network.check_consistency()
    return Fig15bResult(
        config=config,
        join_noti_counts=counts,
        theorem5_bound=expected_join_noti_upper_bound(
            config.n, config.m, config.base, config.num_digits
        ),
        theorem3_violations=violations,
        consistent=report.consistent,
        all_in_system=network.all_in_system(),
        total_messages=network.stats.total_messages,
        message_counts=network.stats.snapshot(),
    )


def run_fig15b_many(
    configs: "Sequence[Fig15bConfig]",
    jobs: int = 1,
    progress=None,
    backend=None,
) -> List[Fig15bResult]:
    """Run several configurations (e.g. :data:`PAPER_CONFIGS`), fanned
    over worker processes when ``jobs > 1`` (or over an explicit
    :class:`repro.exec.ExecutionBackend`); results keep config order."""
    from repro.experiments.parallel import parallel_map

    return parallel_map(run_fig15b, list(configs), jobs=jobs,
                        progress=progress, backend=backend)


#: The paper's four configurations, at full scale (8320-router topology).
PAPER_CONFIGS = tuple(
    Fig15bConfig(
        n=n,
        m=1000,
        base=16,
        num_digits=d,
        use_topology=True,
        topology_params=TransitStubParams(),
    )
    for n in (3096, 7192)
    for d in (8, 40)
)
