"""Experiment harness: regenerates every table and figure of the paper.

* :mod:`~repro.experiments.harness` -- CDFs and summary statistics.
* :mod:`~repro.experiments.workloads` -- ID sampling and network setup.
* :mod:`~repro.experiments.fig1` -- the Figure 1 example neighbor table.
* :mod:`~repro.experiments.fig2` -- the Figure 2 C-set tree example.
* :mod:`~repro.experiments.fig15a` -- Theorem 5 upper-bound curves.
* :mod:`~repro.experiments.fig15b` -- the concurrent-join simulation
  (CDF of JoinNotiMsg per joiner) on a transit-stub topology.
* :mod:`~repro.experiments.parallel` -- process-pool fan-out engine for
  multi-seed campaigns (deterministic merge, serial-equivalent).
"""

from repro.experiments.fig1 import figure1_example
from repro.experiments.fig2 import figure2_example
from repro.experiments.fig15a import figure15a_series, FIG15A_CONFIGS
from repro.experiments.fig15b import (
    Fig15bConfig,
    Fig15bResult,
    run_fig15b,
    run_fig15b_many,
)
from repro.experiments.harness import (
    Cdf,
    join_phase_durations,
    render_metrics_table,
    render_phase_table,
    summarize,
)
from repro.experiments.parallel import (
    JoinTaskConfig,
    JoinTaskResult,
    parallel_map,
    run_join_task,
    run_join_tasks,
    verified_parallel_map,
)
from repro.experiments.sweep import sweep_fig15b

__all__ = [
    "Cdf",
    "join_phase_durations",
    "render_metrics_table",
    "render_phase_table",
    "FIG15A_CONFIGS",
    "Fig15bConfig",
    "Fig15bResult",
    "JoinTaskConfig",
    "JoinTaskResult",
    "figure15a_series",
    "figure1_example",
    "figure2_example",
    "parallel_map",
    "run_fig15b",
    "run_fig15b_many",
    "run_join_task",
    "run_join_tasks",
    "sweep_fig15b",
    "verified_parallel_map",
]
