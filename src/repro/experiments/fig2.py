"""Figure 2: the paper's C-set tree example (b=8, d=5).

``W = {10261, 47051, 00261}`` joins ``V = {72430, 10353, 62332, 13141,
31701}``.  All three joiners share the notification set ``V_1``
(= {13141, 31701}), so they belong to one C-set tree rooted at ``V_1``.
This module rebuilds the tree template of Figure 2(b), runs the join
protocol, and computes a realization of the template (Figure 2(c)
shows one possible realization; which nodes land in which C-set
depends on message interleaving).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.csettree.conditions import (
    check_condition1,
    check_condition2,
    check_condition3,
)
from repro.csettree.realized import RealizedCSetTree, build_realized_tree
from repro.csettree.template import CSetTreeTemplate, build_template
from repro.ids.idspace import IdSpace
from repro.protocol.join import JoinProtocolNetwork
from repro.topology.attachment import UniformLatencyModel

import random

V_IDS = ["72430", "10353", "62332", "13141", "31701"]
W_IDS = ["10261", "47051", "00261"]


@dataclass
class Figure2Result:
    template: CSetTreeTemplate
    realized: RealizedCSetTree
    condition1: List[str]
    condition2: List[str]
    condition3: List[str]
    consistent: bool

    @property
    def all_conditions_hold(self) -> bool:
        return not (self.condition1 or self.condition2 or self.condition3)


def figure2_example(seed: int = 0) -> Figure2Result:
    """Run the Figure 2 scenario and check Section 3.3's conditions."""
    idspace = IdSpace(base=8, num_digits=5)
    existing = [idspace.from_string(s) for s in V_IDS]
    joiners = [idspace.from_string(s) for s in W_IDS]

    template = build_template(existing, joiners)

    network = JoinProtocolNetwork.from_oracle(
        idspace,
        existing,
        latency_model=UniformLatencyModel(random.Random(f"fig2-{seed}")),
        seed=seed,
    )
    for joiner in joiners:
        network.start_join(joiner, at=0.0)
    network.run()

    tables = network.tables()
    realized = build_realized_tree(template, existing, tables)
    return Figure2Result(
        template=template,
        realized=realized,
        condition1=check_condition1(template, realized),
        condition2=check_condition2(template, existing, tables),
        condition3=check_condition3(template, tables),
        consistent=network.check_consistency().consistent,
    )
