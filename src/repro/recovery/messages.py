"""Messages of the failure-recovery protocol."""

from __future__ import annotations

from typing import Tuple

from repro.ids.digits import NodeId
from repro.network.message import HEADER_BYTES, NODE_REF_BYTES, Message

Suffix = Tuple[int, ...]


class PingMsg(Message):
    """Liveness probe; also used for RTT measurement (``sent_at``)."""

    __slots__ = ("sent_at", "token")
    type_name = "PingMsg"

    def __init__(self, sender: NodeId, sent_at: float, token: int = 0):
        super().__init__(sender)
        self.sent_at = sent_at
        self.token = token


class PongMsg(Message):
    """Reply to a ping; echoes the probe's timestamp and token."""

    __slots__ = ("sent_at", "token")
    type_name = "PongMsg"

    def __init__(self, sender: NodeId, sent_at: float, token: int = 0):
        super().__init__(sender)
        self.sent_at = sent_at
        self.token = token


class AdvertiseMsg(Message):
    """'I am alive.'  Pushed by every live node to its forward
    neighbors during recovery.

    Failures can leave a live node with no *incoming* pointers (every
    node that knew it died); pull-style candidate search can never
    find such a node, but it can still speak -- its own table names
    live peers.  Receivers use the advertisement to repair matching
    suspected entries directly and to enrich later candidate replies.
    """

    __slots__ = ()
    type_name = "AdvertiseMsg"


class RepairFindMsg(Message):
    """'Do you know live nodes whose ID ends with ``suffix``?'

    Sent by a node repairing a suspected entry to its live neighbors.
    ``origin`` is the repairing node (replies go straight to it);
    ``ttl`` allows escalating the search to neighbors-of-neighbors when
    direct neighbors know no candidate (heavier failure fractions).
    """

    __slots__ = ("origin", "suffix", "ttl")
    type_name = "RepairFindMsg"

    def __init__(
        self, sender: NodeId, origin: NodeId, suffix: Suffix, ttl: int = 0
    ):
        super().__init__(sender)
        self.origin = origin
        self.suffix = tuple(suffix)
        self.ttl = ttl

    def size_bytes(self) -> int:
        """Header plus origin reference, suffix digits and TTL byte."""
        return HEADER_BYTES + NODE_REF_BYTES + len(self.suffix) + 1


class RepairFindRlyMsg(Message):
    """Candidates with the requested suffix, from the receiver's table
    (liveness unverified -- the requester pings them)."""

    __slots__ = ("suffix", "candidates")
    type_name = "RepairFindRlyMsg"

    def __init__(
        self, sender: NodeId, suffix: Suffix, candidates: Tuple[NodeId, ...]
    ):
        super().__init__(sender)
        self.suffix = tuple(suffix)
        self.candidates = candidates

    def size_bytes(self) -> int:
        """Header plus suffix digits and one reference per candidate."""
        return (
            HEADER_BYTES
            + len(self.suffix)
            + NODE_REF_BYTES * len(self.candidates)
        )
