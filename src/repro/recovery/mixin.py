"""Per-node failure-detection and repair logic.

Mixed into :class:`repro.protocol.node.ProtocolNode`.  All sends that
may target crashed nodes go through the transport's lossy path; the
detection timeout is the failure detector (no pong within the timeout
=> suspected dead -- exact in this simulator, since live nodes always
pong and delivery is reliable).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.ids.digits import NodeId
from repro.runtime.interface import TimerHandle
from repro.recovery.messages import (
    AdvertiseMsg,
    PingMsg,
    PongMsg,
    RepairFindMsg,
    RepairFindRlyMsg,
)

Position = Tuple[int, int]

#: Ping token values: liveness sweep vs repair-candidate verification.
DETECT, VERIFY = 0, 1


class RecoveryMixin:
    """Failure detection and entry repair, one node's share."""

    def _init_recovery(self) -> None:
        self._ping_outstanding: Set[NodeId] = set()
        self._detection_done = True
        self._detection_timer: Optional[TimerHandle] = None
        self._suspected: Dict[Position, NodeId] = {}
        self._repair_pending: Set[Position] = set()
        self._repair_seen: Set[Tuple[NodeId, Tuple[int, ...]]] = set()
        self._known_live: Set[NodeId] = set()
        self.repaired_entries = 0
        self.cleared_entries = 0
        # First instance of the class registers for all (class-shared
        # handler table, see NetworkNode._class_handlers).
        if PingMsg not in self._handlers:
            self.handles(PingMsg, self._on_ping)
            self.handles(PongMsg, self._on_pong)
            self.handles(AdvertiseMsg, self._on_advertise)
            self.handles(RepairFindMsg, self._on_repair_find)
            self.handles(RepairFindRlyMsg, self._on_repair_find_rly)

    def _required_suffix(self, position: Position) -> Tuple[int, ...]:
        level, digit = position
        return self.node_id.suffix(level) + (digit,)

    # -- detection ------------------------------------------------------

    def begin_failure_detection(self, timeout: float) -> None:
        """Ping every distinct forward and reverse neighbor; whoever
        has not answered when ``timeout`` expires is declared dead and
        purged from reverse-neighbor records; its table entries become
        *suspected* and await repair.

        The timeout is an armed runtime timer; a sweep still in flight
        can be called off with :meth:`cancel_failure_detection`."""
        self._detection_done = False
        self._repair_seen = set()
        targets = self.table.distinct_neighbors()
        targets |= self.table.all_reverse_neighbors()
        targets.discard(self.node_id)
        self._ping_outstanding = set()
        for target in targets:
            probe = PingMsg(self.node_id, self.now, token=DETECT)
            self._ping_outstanding.add(target)
            self.transport.send_lossy(target, probe)
        self._detection_timer = self.start_timer(
            timeout, self._on_detection_timeout
        )

    def cancel_failure_detection(self) -> bool:
        """Call off an in-flight detection sweep (cancel-before-fire).

        The armed timeout timer is cancelled and outstanding pings are
        forgotten, so no node gets suspected by the aborted sweep.
        Returns True iff a sweep was actually cancelled; after the
        timeout has fired this is a no-op returning False.
        """
        timer = self._detection_timer
        if timer is None or self._detection_done:
            return False
        timer.cancel()
        self._detection_timer = None
        self._ping_outstanding = set()
        self._detection_done = True
        return True

    def _on_detection_timeout(self) -> None:
        self._detection_timer = None
        for dead in self._ping_outstanding:
            for position in self.table.positions_of(dead):
                self._suspected[position] = dead
            self.table.remove_reverse_everywhere(dead)
            self.backups.discard(dead)
        self._ping_outstanding = set()
        self._detection_done = True

    @property
    def suspected_positions(self) -> Set[Position]:
        return set(self._suspected)

    # -- advertising ------------------------------------------------------

    def begin_advertise(self) -> None:
        """Push our existence to every (believed-live) forward
        neighbor; see :class:`~repro.recovery.messages.AdvertiseMsg`."""
        dead = set(self._suspected.values())
        for neighbor in self.table.distinct_neighbors():
            if neighbor == self.node_id or neighbor in dead:
                continue
            self.transport.send_lossy(
                neighbor, AdvertiseMsg(self.node_id)
            )

    def _on_advertise(self, msg: AdvertiseMsg) -> None:
        from repro.protocol.messages import RvNghNotiMsg
        from repro.routing.entry import NeighborState

        self._known_live.add(msg.sender)
        # The advertiser just proved liveness: repair any suspected
        # entry it fits directly.
        for position in list(self._suspected):
            if not msg.sender.has_suffix(self._required_suffix(position)):
                continue
            level, digit = position
            self.table.replace_entry(
                level, digit, msg.sender, NeighborState.S
            )
            self.send(
                msg.sender,
                RvNghNotiMsg(self.node_id, level, digit, NeighborState.S),
            )
            del self._suspected[position]
            self._repair_pending.discard(position)
            self.repaired_entries += 1

    # -- repair ---------------------------------------------------------

    def begin_repair(self, ttl: int = 0) -> None:
        """For each suspected entry, ask live neighbors for candidates
        with the entry's required suffix.  ``ttl > 0`` lets queried
        nodes that know no candidate forward the question onward
        (escalation for heavy failure fractions)."""
        if not self._suspected:
            return
        self._repair_pending = set(self._suspected)
        dead = set(self._suspected.values())
        live_neighbors = {
            neighbor
            for neighbor in self.table.distinct_neighbors()
            if neighbor not in dead and neighbor != self.node_id
        }
        for position in self._repair_pending:
            # Own backups first (footnote 6): verify them by ping and
            # install on the pong, skipping the network search.
            for backup in self.backups.get(*position):
                self.transport.send_lossy(
                    backup, PingMsg(self.node_id, self.now, token=VERIFY)
                )
            suffix = self._required_suffix(position)
            for neighbor in live_neighbors:
                self.transport.send_lossy(
                    neighbor,
                    RepairFindMsg(self.node_id, self.node_id, suffix, ttl),
                )

    def _on_repair_find(self, msg: RepairFindMsg) -> None:
        suffix = msg.suffix
        candidates: List[NodeId] = []
        if self.node_id.has_suffix(suffix):
            candidates.append(self.node_id)
        known = self.table.distinct_neighbors() | self._known_live
        for neighbor in sorted(known, key=lambda n: n.digits):
            if (
                neighbor.has_suffix(suffix)
                and neighbor != msg.origin
                and neighbor not in candidates
            ):
                candidates.append(neighbor)
        if candidates:
            self.transport.send_lossy(
                msg.origin,
                RepairFindRlyMsg(self.node_id, suffix, tuple(candidates)),
            )
        # Forward even when candidates were found: they are unverified
        # (possibly dead themselves), so the search must not stop at
        # the first node that merely *names* class members.
        if msg.ttl > 0:
            key = (msg.origin, suffix)
            if key in self._repair_seen:
                return
            self._repair_seen.add(key)
            for neighbor in self.table.distinct_neighbors():
                if neighbor in (self.node_id, msg.origin, msg.sender):
                    continue
                self.transport.send_lossy(
                    neighbor,
                    RepairFindMsg(
                        self.node_id, msg.origin, suffix, msg.ttl - 1
                    ),
                )

    def _on_repair_find_rly(self, msg: RepairFindRlyMsg) -> None:
        # Verify each candidate by pinging it; installation happens on
        # the pong (the candidate may itself be dead).
        for candidate in msg.candidates:
            if candidate == self.node_id:
                continue
            self.transport.send_lossy(
                candidate, PingMsg(self.node_id, self.now, token=VERIFY)
            )

    def _install_repair(self, candidate: NodeId) -> None:
        from repro.protocol.messages import RvNghNotiMsg
        from repro.routing.entry import NeighborState

        for position in list(self._repair_pending):
            suffix = self._required_suffix(position)
            if not candidate.has_suffix(suffix):
                continue
            level, digit = position
            self.table.replace_entry(
                level, digit, candidate, NeighborState.S
            )
            self.send(
                candidate,
                RvNghNotiMsg(self.node_id, level, digit, NeighborState.S),
            )
            self._repair_pending.discard(position)
            self._suspected.pop(position, None)
            self.repaired_entries += 1

    def finalize_repairs(self) -> int:
        """Clear entries whose class could not be repopulated (the
        class is presumed extinct).  Returns how many were cleared."""
        cleared = 0
        for position in list(self._suspected):
            self.table.clear_entry(position[0], position[1])
            del self._suspected[position]
            self._repair_pending.discard(position)
            cleared += 1
        self.cleared_entries += cleared
        return cleared

    # -- ping plumbing ----------------------------------------------------

    def _on_ping(self, msg: PingMsg) -> None:
        self.send(
            msg.sender, PongMsg(self.node_id, msg.sent_at, msg.token)
        )

    def _on_pong(self, msg: PongMsg) -> None:
        if msg.token == DETECT:
            self._ping_outstanding.discard(msg.sender)
        elif msg.token == VERIFY:
            self._install_repair(msg.sender)
        else:
            self._on_measured_pong(msg)

    def _on_measured_pong(self, msg: PongMsg) -> None:
        """Hook for other subsystems (locality optimization) that use
        tokened pings for RTT measurement."""
        return None
