"""Crash injection and the round-based recovery driver."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List

from repro.ids.digits import NodeId
from repro.protocol.status import NodeStatus


@dataclass
class RecoveryReport:
    """What a recovery run did."""

    rounds: int = 0
    repaired_entries: int = 0
    cleared_entries: int = 0
    initially_suspected: int = 0
    unresolved: int = 0
    consistent: bool = False

    def __str__(self) -> str:  # pragma: no cover - repr sugar
        return (
            f"rounds={self.rounds} repaired={self.repaired_entries} "
            f"cleared={self.cleared_entries} consistent={self.consistent}"
        )


def fail_nodes(network, node_ids: Iterable[NodeId]) -> None:
    """Crash-stop the given nodes: no farewell protocol, later messages
    to them are dropped (recovery paths) or raise (protocol paths)."""
    for node_id in node_ids:
        node = network.nodes.pop(node_id)
        node.status = NodeStatus.LEFT
        network.departed[node_id] = node
        network.transport.unregister(node_id)


def recover_from_failures(
    network,
    ping_timeout: float = 300.0,
    max_rounds: int = 8,
    max_ttl: int = 2,
) -> RecoveryReport:
    """Run detection/repair sweeps until consistency or a fixpoint.

    ``ping_timeout`` must exceed one round-trip of the latency model in
    use (the default covers the uniform 1..100 model and the default
    transit-stub topology).  When a round makes no progress the search
    radius escalates (neighbors-of-neighbors, up to ``max_ttl`` hops)
    before the driver concludes the remaining classes are extinct.
    """
    report = RecoveryReport()

    def live_nodes() -> List:
        return list(network.nodes.values())

    for node in live_nodes():
        node.repaired_entries = 0
        node.cleared_entries = 0

    previous_suspected = None
    ttl = 0
    for round_index in range(max_rounds):
        for node in live_nodes():
            node.begin_failure_detection(ping_timeout)
        network.run()
        suspected = sum(
            len(node.suspected_positions) for node in live_nodes()
        )
        if round_index == 0:
            report.initially_suspected = suspected
        if suspected == 0:
            report.rounds = round_index + 1
            break
        # Advertise phase: lets nodes that lost every incoming pointer
        # re-introduce themselves before the pull-style search runs.
        for node in live_nodes():
            node.begin_advertise()
        network.run()
        for node in live_nodes():
            node.begin_repair(ttl=ttl)
        network.run()
        remaining = sum(
            len(node.suspected_positions) for node in live_nodes()
        )
        report.rounds = round_index + 1
        if remaining == 0:
            # One more detection pass will confirm and exit.
            continue
        if previous_suspected is not None and remaining >= previous_suspected:
            if ttl >= max_ttl:
                break  # fixpoint even with the widest search
            ttl += 1  # escalate: search neighbors-of-neighbors
        previous_suspected = remaining

    for node in live_nodes():
        node.finalize_repairs()
    network.run()

    report.repaired_entries = sum(
        node.repaired_entries for node in live_nodes()
    )
    report.cleared_entries = sum(
        node.cleared_entries for node in live_nodes()
    )
    report.unresolved = sum(
        len(node.suspected_positions) for node in live_nodes()
    )
    report.consistent = network.check_consistency().consistent
    return report
