"""Failure recovery (the paper's stated future work, Section 7).

When nodes crash (fail-stop, no farewell messages), surviving neighbor
tables contain dangling pointers -- condition (a) violations waiting
to happen, and false positives by Definition 3.8.  This package
restores consistency:

1. **Detection** -- each node pings the distinct occupants of its
   table; a missing pong by the timeout marks every entry holding that
   node as *suspected* (:mod:`~repro.recovery.mixin`).
2. **Repair** -- for each suspected entry, the node asks its live
   neighbors for substitute candidates with the entry's required
   suffix, verifies candidates by pinging them, and installs the first
   live one (same class, so condition (a) is restored exactly).
3. **Iteration** -- repaired tables expose more candidates, so the
   driver (:mod:`~repro.recovery.driver`) sweeps in rounds until a
   fixpoint; entries whose class genuinely died out are cleared at the
   end (restoring condition (b)).

The sweep is a best-effort epidemic: with moderate failure fractions
the surviving pointer graph stays rich enough that a few rounds reach
full Definition 3.8 consistency (measured in
``benchmarks/bench_failure_recovery.py``); the driver reports exactly
what it repaired, cleared, and could not prove either way.

Fundamental limit: if the failures *partition* the undirected survivor
pointer graph, no distributed protocol can reconnect the components
(no message from one side can ever name the other).  The sweep then
still guarantees no dangling pointers -- survivors may be missing
entries (false negatives) but never point at the dead or at phantom
classes.
"""

from repro.recovery.driver import (
    RecoveryReport,
    fail_nodes,
    recover_from_failures,
)
from repro.recovery.messages import (
    PingMsg,
    PongMsg,
    RepairFindMsg,
    RepairFindRlyMsg,
)

__all__ = [
    "PingMsg",
    "PongMsg",
    "RecoveryReport",
    "RepairFindMsg",
    "RepairFindRlyMsg",
    "fail_nodes",
    "recover_from_failures",
]
