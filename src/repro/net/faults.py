"""Fault injection at the datagram boundary.

The in-memory :class:`~repro.network.transport.Transport` is reliable
by construction; the whole point of the real-wire tier is that UDP is
not.  :class:`FaultInjector` sits between the
:class:`~repro.net.datagram.DatagramTransport` and the socket and
decides, per outbound protocol datagram, whether to deliver it once
(the normal case), drop it, duplicate it, or delay it past its
successors (reordering).  Decisions come from a seeded RNG so a lossy
run is reproducible given its seed.

Targeted drops -- "lose the first JoinNotiMsg" -- are expressed as
``(type_name, count)`` budgets, the wire-level analogue of the
simulator's ``Transport.drop_filter``; the acceptance suite uses them
to prove the retransmission machinery recovers exactly the scenario
Section 5 of the paper worries about.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Tuple


class FaultPlan:
    """Knobs for a lossy channel.

    ``loss``/``duplicate``/``reorder`` are independent probabilities in
    ``[0, 1]`` applied to every outbound protocol datagram (acks
    included -- a lost ack exercises the duplicate-suppression path).
    ``drop_first`` maps message type names to a number of initial
    occurrences to drop deterministically, *before* the probabilistic
    rules apply.  ``reorder_delay`` is the extra protocol-time delay a
    reordered datagram is held for.  ``latency`` is a deterministic
    base delay (protocol units) added to *every* transmission --
    loopback sockets deliver in microseconds, so emulating a LAN or
    WAN one-way delay is a fault-injection concern like the rest.
    """

    __slots__ = (
        "loss", "duplicate", "reorder", "reorder_delay", "latency",
        "seed", "drop_first",
    )

    def __init__(
        self,
        loss: float = 0.0,
        duplicate: float = 0.0,
        reorder: float = 0.0,
        reorder_delay: float = 20.0,
        latency: float = 0.0,
        seed: int = 0,
        drop_first: Optional[Dict[str, int]] = None,
    ):
        for name, rate in (("loss", loss), ("duplicate", duplicate),
                           ("reorder", reorder)):
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{name} rate must be in [0, 1]: {rate}")
        if latency < 0.0:
            raise ValueError(f"latency must be >= 0: {latency}")
        self.loss = loss
        self.duplicate = duplicate
        self.reorder = reorder
        self.reorder_delay = reorder_delay
        self.latency = latency
        self.seed = seed
        self.drop_first = dict(drop_first) if drop_first else {}

    @property
    def active(self) -> bool:
        return bool(
            self.loss or self.duplicate or self.reorder
            or self.latency or self.drop_first
        )


#: One transmission instruction: (extra delay in protocol units, send?).
Decision = Tuple[float, bool]


class FaultInjector:
    """Applies a :class:`FaultPlan` to outbound datagrams.

    :meth:`transmissions` returns the list of extra-delay values at
    which the datagram should actually be handed to the socket --
    empty means *dropped*, two entries mean *duplicated*, a non-zero
    delay means *held back* (reordered behind later traffic).
    """

    def __init__(self, plan: FaultPlan):
        self.plan = plan
        self._rng = random.Random(plan.seed)
        self._drop_budget = dict(plan.drop_first)
        self.dropped = 0
        self.duplicated = 0
        self.reordered = 0

    def transmissions(self, type_name: Optional[str]) -> List[float]:
        """Delays (protocol units) at which to transmit one datagram
        carrying a message of ``type_name`` (``None`` for acks)."""
        plan = self.plan
        if type_name is not None and self._drop_budget:
            remaining = self._drop_budget.get(type_name, 0)
            if remaining > 0:
                self._drop_budget[type_name] = remaining - 1
                self.dropped += 1
                return []
        rng = self._rng
        if plan.loss and rng.random() < plan.loss:
            self.dropped += 1
            return []
        delay = plan.latency
        if plan.reorder and rng.random() < plan.reorder:
            self.reordered += 1
            delay += plan.reorder_delay * (0.5 + rng.random())
        sends = [delay]
        if plan.duplicate and rng.random() < plan.duplicate:
            self.duplicated += 1
            sends.append(delay + plan.reorder_delay * rng.random())
        return sends


__all__ = ["FaultInjector", "FaultPlan"]
