"""Synchronous control-protocol client.

The cluster harness, the CLI and the tests live *outside* any runtime
loop; they need plain blocking request/response against node daemons
and the rendezvous service.  :class:`ControlClient` is that: one UDP
socket, a request id counter, per-request timeout with retries
(control requests are idempotent reads or idempotent commands, so
retrying is safe), and response matching by request id.
"""

from __future__ import annotations

import socket
from typing import Any, Dict, Optional

from repro.net.wire import (
    Address,
    RSP,
    ctl_frame,
    decode_frame,
    encode_frame,
)
from repro.runtime.codec import CodecError


class ControlError(RuntimeError):
    """A control request got no response within its retry budget."""


class ControlClient:
    """Blocking UDP control requests with retries."""

    def __init__(self, timeout: float = 1.0, retries: int = 5):
        self.timeout = timeout
        self.retries = retries
        self._sock = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
        self._sock.bind(("127.0.0.1", 0))
        self._next_rid = 1

    def close(self) -> None:
        """Release the client socket."""
        self._sock.close()

    def __enter__(self) -> "ControlClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def request(
        self,
        addr: Address,
        op: str,
        body: Optional[Dict[str, Any]] = None,
        timeout: Optional[float] = None,
    ) -> Dict[str, Any]:
        """Send ``op`` to ``addr``; returns the response body or raises
        :class:`ControlError` after the retry budget is spent."""
        rid = self._next_rid
        self._next_rid = rid + 1
        data = encode_frame(ctl_frame(rid, op, body))
        per_try = timeout if timeout is not None else self.timeout
        for _ in range(self.retries + 1):
            self._sock.sendto(data, addr)
            self._sock.settimeout(per_try)
            try:
                while True:
                    raw, _src = self._sock.recvfrom(65535)
                    try:
                        frame = decode_frame(raw)
                    except CodecError:
                        continue
                    if frame.get("k") == RSP and frame.get("r") == rid:
                        return frame.get("b") or {}
                    # A stale response to an earlier (retried) request:
                    # keep listening within this try's window.
            except socket.timeout:
                continue
        raise ControlError(f"no response to {op!r} from {addr}")

    def try_request(
        self,
        addr: Address,
        op: str,
        body: Optional[Dict[str, Any]] = None,
        timeout: Optional[float] = None,
    ) -> Optional[Dict[str, Any]]:
        """Like :meth:`request` but returns ``None`` instead of raising."""
        try:
            return self.request(addr, op, body, timeout=timeout)
        except ControlError:
            return None


__all__ = ["ControlClient", "ControlError"]
