"""Rendezvous service: the deployment tier's bootstrap directory.

A joining node must know *some* member of the network (the paper's
assumption (ii)); in a real deployment something has to hand out that
first contact.  The rendezvous service is that something -- a tiny UDP
directory in the style of bootcast's control server: nodes announce
``(id, address, s-node?)`` and anyone can ask for live peers or
resolve a specific ID to its address.

It is deliberately *not* part of the protocol: it never sees protocol
messages, holds no neighbor tables, and the network keeps running if
it dies (nodes already introduced to each other talk directly; only
new resolutions stall).  State is soft -- refreshed by node heartbeats
and expired by TTL -- so a restarted rendezvous repopulates itself.

Wire format: the ``c``/``r`` control frames of :mod:`repro.net.wire`.

=========  =======================================  ==================
op         body                                     response
=========  =======================================  ==================
announce   ``id`` (tagged), ``s`` (is_s_node),      ``ok``, ``peers``
           ``kind`` (optional, default "node")
peers      --                                       ``peers`` (S only)
resolve    ``id`` (tagged)                          ``addr`` or null
remove     ``id`` (tagged)                          ``ok``
ping       --                                       ``ok``
directory  --                                       ``nodes`` (all live)
stop       --                                       ``ok`` (then exits)
=========  =======================================  ==================

``directory`` differs from ``peers``: it lists *every* live
registration (uncapped) as ``[id, addr, s, kind]`` rows -- the full
roster a telemetry collector, ``repro top`` or a sweep coordinator
iterates -- while ``peers`` is the bootstrap contact list (S-nodes
only, capped).  ``kind`` distinguishes protocol nodes (``"node"``)
from sweep executors (``"worker"``, announced by ``repro worker``);
workers never appear in ``peers``, so a mixed cluster bootstraps
exactly as before.
"""

from __future__ import annotations

import asyncio
import time
from typing import Any, Dict, List, Optional, Tuple

from repro.ids.digits import NodeId
from repro.net.wire import (
    Address,
    CTL,
    decode_frame,
    encode_frame,
    node_id_from_wire,
    node_id_to_wire,
    rsp_frame,
)
from repro.runtime.codec import CodecError

#: Announcements older than this (seconds) are expired on read.
DEFAULT_TTL = 60.0

#: Cap on the peer list handed to a joining node.
MAX_PEERS_RETURNED = 16


class _Registration:
    __slots__ = ("addr", "is_s_node", "refreshed_at", "kind")

    def __init__(
        self,
        addr: Address,
        is_s_node: bool,
        refreshed_at: float,
        kind: str = "node",
    ):
        self.addr = addr
        self.is_s_node = is_s_node
        self.refreshed_at = refreshed_at
        self.kind = kind


class _RendezvousProtocol(asyncio.DatagramProtocol):
    def __init__(self, owner: "RendezvousServer"):
        self.owner = owner

    def datagram_received(self, data: bytes, addr) -> None:
        self.owner._on_datagram(data, (addr[0], addr[1]))


class RendezvousServer:
    """The directory server.  Owns a private event loop; ``serve()``
    blocks until a ``stop`` op arrives (or :meth:`stop` is called from
    another thread, which is how in-process tests drive it)."""

    def __init__(self, listen: Address, ttl: float = DEFAULT_TTL):
        self.listen = listen
        self.ttl = ttl
        self.registrations: Dict[NodeId, _Registration] = {}
        self.requests_served = 0
        self._loop = asyncio.new_event_loop()
        self._endpoint = None

    # -- lifecycle ------------------------------------------------------

    def open(self) -> Address:
        """Bind the socket; returns the bound address."""

        async def _bind():
            return await self._loop.create_datagram_endpoint(
                lambda: _RendezvousProtocol(self), local_addr=self.listen
            )

        endpoint, _ = self._loop.run_until_complete(_bind())
        self._endpoint = endpoint
        sockname = endpoint.get_extra_info("sockname")
        self.listen = (sockname[0], sockname[1])
        return self.listen

    def serve(self) -> None:
        """Serve until stopped."""
        self._loop.run_forever()

    def stop(self) -> None:
        """Stop serving (threadsafe)."""
        self._loop.call_soon_threadsafe(self._loop.stop)

    def close(self) -> None:
        """Close the socket and release the private event loop."""
        if self._endpoint is not None:
            self._endpoint.close()
            self._endpoint = None
        if not self._loop.is_closed():
            # Let the endpoint's close callbacks run before releasing.
            self._loop.call_soon(self._loop.stop)
            self._loop.run_forever()
            self._loop.close()

    # -- request handling ----------------------------------------------

    def _on_datagram(self, data: bytes, addr: Address) -> None:
        try:
            frame = decode_frame(data)
            if frame["k"] != CTL:
                return
            response = self.handle(
                frame["op"], frame.get("b") or {}, addr
            )
        except (CodecError, KeyError, TypeError, ValueError):
            return  # garbage or half-spoken protocol: ignore
        if response is not None and self._endpoint is not None:
            self._endpoint.sendto(
                encode_frame(rsp_frame(frame["r"], response)), addr
            )

    def handle(
        self, op: str, body: Dict[str, Any], addr: Address
    ) -> Optional[Dict[str, Any]]:
        """Process one control op; returns the response body.  Exposed
        (and directly unit-testable) separately from the socket glue."""
        self.requests_served += 1
        if op == "announce":
            node_id = node_id_from_wire(body["id"])
            # The announcing socket's source address IS the node's
            # listen address (daemons send from their bound socket).
            self.registrations[node_id] = _Registration(
                addr,
                bool(body.get("s")),
                time.monotonic(),
                str(body.get("kind") or "node"),
            )
            return {"ok": True, "peers": self._peer_list(exclude=node_id)}
        if op == "peers":
            return {"peers": self._peer_list()}
        if op == "resolve":
            node_id = node_id_from_wire(body["id"])
            registration = self._live().get(node_id)
            return {
                "addr": list(registration.addr) if registration else None
            }
        if op == "remove":
            self.registrations.pop(node_id_from_wire(body["id"]), None)
            return {"ok": True}
        if op == "ping":
            return {"ok": True, "nodes": len(self._live())}
        if op == "directory":
            return {
                "nodes": [
                    [
                        node_id_to_wire(node_id),
                        list(reg.addr),
                        reg.is_s_node,
                        reg.kind,
                    ]
                    for node_id, reg in sorted(
                        self._live().items(), key=lambda kv: str(kv[0])
                    )
                ]
            }
        if op == "stop":
            self._loop.call_soon(self._loop.stop)
            return {"ok": True}
        return {"error": f"unknown op: {op}"}

    def _live(self) -> Dict[NodeId, _Registration]:
        cutoff = time.monotonic() - self.ttl
        stale = [
            node_id
            for node_id, reg in self.registrations.items()
            if reg.refreshed_at < cutoff
        ]
        for node_id in stale:
            del self.registrations[node_id]
        return self.registrations

    def _peer_list(
        self, exclude: Optional[NodeId] = None
    ) -> List[List[Any]]:
        """S-node peers as ``[id_wire, [host, port]]`` rows -- the
        contact list a joining node bootstraps from.  Only protocol
        nodes qualify: sweep workers announce ``s=False`` and
        ``kind="worker"`` and must never be handed out as contacts."""
        rows = []
        for node_id, reg in self._live().items():
            if not reg.is_s_node or reg.kind != "node" or node_id == exclude:
                continue
            rows.append([node_id_to_wire(node_id), list(reg.addr)])
            if len(rows) >= MAX_PEERS_RETURNED:
                break
        return rows


__all__ = ["DEFAULT_TTL", "MAX_PEERS_RETURNED", "RendezvousServer"]
