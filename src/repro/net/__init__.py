"""Deployment tier: the protocol over real UDP sockets.

The simulator tier proves the protocol correct under a controlled
clock; this package runs the *same* protocol core as real processes
exchanging real datagrams:

* :mod:`repro.net.wire` -- datagram framing over the
  :mod:`repro.runtime.codec` tagged-JSON message format.
* :mod:`repro.net.datagram` -- :class:`~repro.net.datagram.DatagramTransport`,
  the UDP sibling of the in-memory transport (ARQ reliability,
  address learning, fault injection).
* :mod:`repro.net.faults` -- seeded loss/duplication/reordering.
* :mod:`repro.net.daemon` -- ``repro node``, one protocol node per
  OS process with a UDP control protocol.
* :mod:`repro.net.rendezvous` -- ``repro rendezvous``, the bootstrap
  directory.
* :mod:`repro.net.control` -- blocking control-protocol client.
* :mod:`repro.net.cluster` -- ``repro cluster``, the multi-process
  join experiment with live Definition 3.8 / Theorem 3 verification.
"""

from repro.net.cluster import ClusterConfig, ClusterError, run_cluster
from repro.net.control import ControlClient, ControlError
from repro.net.daemon import NodeDaemon, NodeDaemonConfig
from repro.net.datagram import DatagramTransport
from repro.net.faults import FaultInjector, FaultPlan
from repro.net.rendezvous import RendezvousServer
from repro.net.wire import parse_hostport, format_hostport

__all__ = [
    "ClusterConfig",
    "ClusterError",
    "ControlClient",
    "ControlError",
    "DatagramTransport",
    "FaultInjector",
    "FaultPlan",
    "NodeDaemon",
    "NodeDaemonConfig",
    "RendezvousServer",
    "format_hostport",
    "parse_hostport",
    "run_cluster",
]
