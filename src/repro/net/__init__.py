"""Deployment tier: the protocol over real UDP sockets.

The simulator tier proves the protocol correct under a controlled
clock; this package runs the *same* protocol core as real processes
exchanging real datagrams:

* :mod:`repro.net.wire` -- datagram framing over the
  :mod:`repro.runtime.codec` tagged-JSON message format.
* :mod:`repro.net.datagram` -- :class:`~repro.net.datagram.DatagramTransport`,
  the UDP sibling of the in-memory transport (ARQ reliability,
  address learning, fault injection).
* :mod:`repro.net.faults` -- seeded loss/duplication/reordering.
* :mod:`repro.net.daemon` -- ``repro node``, one protocol node per
  OS process with a UDP control protocol.
* :mod:`repro.net.rendezvous` -- ``repro rendezvous``, the bootstrap
  directory.
* :mod:`repro.net.control` -- blocking control-protocol client.
* :mod:`repro.net.cluster` -- ``repro cluster``, the multi-process
  join experiment with live Definition 3.8 / Theorem 3 verification.
* :mod:`repro.net.collect` -- telemetry collector: clock-aligns and
  merges every daemon's causal trace into one analyzable stream.
* :mod:`repro.net.top` -- ``repro top``, the live cluster status view.
"""

from repro.net.cluster import ClusterConfig, ClusterError, run_cluster
from repro.net.collect import CollectError, TelemetryCollector
from repro.net.control import ControlClient, ControlError
from repro.net.daemon import NodeDaemon, NodeDaemonConfig
from repro.net.datagram import DatagramTransport
from repro.net.faults import FaultInjector, FaultPlan
from repro.net.rendezvous import RendezvousServer
from repro.net.top import poll_cluster, run_top
from repro.net.wire import parse_hostport, format_hostport

__all__ = [
    "ClusterConfig",
    "ClusterError",
    "CollectError",
    "ControlClient",
    "ControlError",
    "DatagramTransport",
    "FaultInjector",
    "FaultPlan",
    "NodeDaemon",
    "NodeDaemonConfig",
    "RendezvousServer",
    "TelemetryCollector",
    "format_hostport",
    "parse_hostport",
    "poll_cluster",
    "run_cluster",
    "run_top",
]
