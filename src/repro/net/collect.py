"""Telemetry collector: pull every daemon's trace, merge into one.

The simulator hands the analysis tier one tracer.  A deployed cluster
has one per process, each timestamped in its own local protocol time.
:class:`TelemetryCollector` closes the gap from the *outside* -- it
needs nothing but the control protocol:

1. **Discover** the daemons: either an explicit address list, or the
   rendezvous ``directory`` op (every live registration, not just
   S-nodes).
2. **Align clocks**: sample each daemon's ``clock`` op a few times,
   keep the minimum-RTT sample (:class:`~repro.obs.remote.ClockSync`),
   and anchor the daemon's protocol timeline at that sample's
   midpoint on the collector's clock.
3. **Pull**: page through each daemon's ``telemetry`` op until
   ``done``.
4. **Merge**: :func:`~repro.obs.remote.merge_traces` rewrites span ids
   to ``"<node>:<id>"`` and re-expresses every timestamp on one global
   protocol-time axis -- message ids need no rewriting because the
   datagram transport stamps cluster-unique strings that both ends of
   a datagram record verbatim.

The merged ``(spans, events)`` stream is byte-compatible with
:func:`~repro.obs.export.read_trace_jsonl` output, so
:class:`~repro.obs.causality.CausalForest`,
:mod:`~repro.obs.lifecycle` and :class:`~repro.obs.report.RunReport`
consume a live 5-process cluster exactly as they consume a simulator
run.
"""

from __future__ import annotations

import time
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.net.control import ControlClient
from repro.net.wire import Address, node_id_from_wire
from repro.obs.export import write_trace_records
from repro.obs.remote import (
    ClockSample,
    ClockSync,
    DaemonTrace,
    merge_traces,
)

#: Clock-op round trips per daemon; the min-RTT one wins.
CLOCK_SAMPLES = 5

#: Safety cap on telemetry pages pulled from one daemon.
MAX_PAGES = 4096


class CollectError(RuntimeError):
    """A daemon could not be sampled or paged."""


class TelemetryCollector:
    """Pulls and merges telemetry from live daemons over control UDP.

    ``client`` is an open :class:`~repro.net.control.ControlClient`;
    the collector never owns it (callers reuse one client across
    status polls, table pulls and telemetry collection).
    """

    def __init__(
        self, client: ControlClient, clock_samples: int = CLOCK_SAMPLES
    ):
        self.client = client
        self.clock_samples = max(1, clock_samples)

    # -- discovery ------------------------------------------------------

    def discover(
        self, rendezvous: Address, workers: bool = False
    ) -> List[Tuple[str, Address]]:
        """All live daemons known to the rendezvous, as
        ``(node_id_string, address)`` rows (sorted by id).

        Directory rows registered with ``kind="worker"`` (sweep
        executors, which serve no ``clock``/``telemetry`` ops) are
        skipped unless ``workers=True``; pre-kind rendezvous rows
        (length 3) count as protocol nodes.
        """
        body = self.client.try_request(rendezvous, "directory")
        rows: List[Tuple[str, Address]] = []
        for entry in (body or {}).get("nodes") or []:
            id_wire, addr = entry[0], entry[1]
            kind = entry[3] if len(entry) > 3 else "node"
            if kind == "worker" and not workers:
                continue
            rows.append((str(node_id_from_wire(id_wire)), (addr[0], addr[1])))
        rows.sort(key=lambda row: row[0])
        return rows

    # -- clock alignment ------------------------------------------------

    def sample_clock(self, addr: Address) -> Tuple[ClockSync, Dict[str, Any]]:
        """RTT-sample ``addr``'s ``clock`` op; returns the chosen sync
        plus the *best* (min-RTT) response body, whose ``now`` /
        ``time_scale`` anchor the daemon's protocol timeline."""
        samples: List[ClockSample] = []
        bodies: List[Dict[str, Any]] = []
        for _ in range(self.clock_samples):
            # Wall clock on both ends: the daemon's ``clock`` op
            # reports ``time.time()``, so sampling against the same
            # clock family makes the offset a true daemon-vs-collector
            # skew (near zero on one machine) instead of an
            # epoch-vs-monotonic artifact.
            t0 = time.time()
            body = self.client.try_request(addr, "clock")
            t1 = time.time()
            if body is None or "wall" not in body:
                continue
            samples.append(ClockSample(t0, float(body["wall"]), t1))
            bodies.append(body)
        if not samples:
            raise CollectError(f"no clock response from {addr}")
        sync = ClockSync(samples)
        return sync, bodies[samples.index(sync.best)]

    # -- pull -----------------------------------------------------------

    def pull(self, addr: Address) -> Optional[DaemonTrace]:
        """One daemon's full trace as a time-anchored
        :class:`~repro.obs.remote.DaemonTrace`; ``None`` if the daemon
        is unreachable or runs without telemetry."""
        try:
            sync, anchor = self.sample_clock(addr)
        except CollectError:
            return None
        spans: List[Dict[str, Any]] = []
        events: List[Dict[str, Any]] = []
        node = "?"
        cursor = (0, 0)
        for _ in range(MAX_PAGES):
            page = self.client.try_request(
                addr,
                "telemetry",
                {"spans_from": cursor[0], "events_from": cursor[1]},
            )
            if page is None or "error" in page:
                return None
            node = page.get("node", node)
            spans.extend(page.get("spans") or [])
            events.extend(page.get("events") or [])
            if page.get("done", True):
                break
            cursor = tuple(page["next"])
        return DaemonTrace(
            name=str(node),
            spans=spans,
            events=events,
            anchor_now=float(anchor.get("now", 0.0)),
            anchor_collector_wall=sync.best.midpoint,
            time_scale=float(anchor.get("time_scale", 1.0)),
            clock_offset=sync.offset,
            clock_rtt=sync.rtt,
        )

    # -- merge ----------------------------------------------------------

    def collect(
        self, addrs: Sequence[Address]
    ) -> Tuple[List[DaemonTrace], List[Dict[str, Any]], List[Dict[str, Any]]]:
        """Pull every reachable daemon in ``addrs`` and merge.

        Returns ``(daemon_traces, merged_spans, merged_events)``;
        unreachable / telemetry-less daemons are skipped (their
        absence shows in the returned trace list, which callers can
        compare against the roster they expected).
        """
        traces = [trace for trace in map(self.pull, addrs) if trace]
        spans, events = merge_traces(traces)
        return traces, spans, events

    def collect_to_file(
        self, addrs: Sequence[Address], path: str
    ) -> Tuple[List[DaemonTrace], int]:
        """Merge ``addrs``' telemetry into a JSONL trace at ``path``
        (readable by ``repro report``).  Returns the per-daemon traces
        and the record count written."""
        traces, spans, events = self.collect(addrs)
        return traces, write_trace_records(spans, events, path)


def clock_table(traces: Sequence[DaemonTrace]) -> List[Dict[str, Any]]:
    """Per-daemon clock diagnostics for embedding in reports."""
    return [
        {
            "node": trace.name,
            "offset_ms": round(trace.clock_offset * 1000.0, 3),
            "rtt_ms": round(trace.clock_rtt * 1000.0, 3),
            "spans": len(trace.spans),
            "events": len(trace.events),
        }
        for trace in traces
    ]


__all__ = [
    "CLOCK_SAMPLES",
    "MAX_PAGES",
    "CollectError",
    "TelemetryCollector",
    "clock_table",
]
