"""The node daemon: one protocol node in one OS process.

``repro node --listen HOST:PORT --rendezvous HOST:PORT`` runs a single
:class:`~repro.protocol.node.ProtocolNode` on an
:class:`~repro.runtime.realtime.AsyncioRuntime` over the UDP
:class:`~repro.net.datagram.DatagramTransport` -- the identical state
machine every simulation runs, now with real packets.

Lifecycle:

1. Bind the socket, derive the node ID (``--id``, or a hash of the
   bound address so unconfigured daemons get distinct IDs).
2. Seed daemons (``--seed-node``) start *in_system* with the
   Section 6.1 single-node table.  Everyone else finds a gateway --
   an explicit ``--bootstrap`` peer (asked for its ID with a control
   ``hello``), or an S-node handed out by the rendezvous service --
   and runs the join protocol against it.
3. A heartbeat timer re-announces to the rendezvous (carrying the
   current S-node bit, so only *in_system* nodes are handed out as
   gateways) and keeps the runtime loop alive between messages.
4. The same socket serves the control protocol: ``hello`` / ``status``
   / ``table`` / ``leave`` / ``stop`` / ``clock`` / ``telemetry`` /
   ``metrics``.  ``table`` returns the live neighbor table in wire
   form, which is how the cluster harness runs the Definition 3.8
   checker against a running deployment; ``clock`` + ``telemetry`` are
   how a collector (:mod:`repro.net.collect`) aligns and pulls this
   daemon's trace for the cluster-wide merge.

With ``--telemetry`` the daemon records into a
:class:`~repro.obs.remote.RemoteTelemetry` bundle: the transport
stamps causal ids on every outgoing message (so cross-process message
trees reconstruct), a :class:`~repro.obs.instrument.JoinObserver`
records the same ``join`` / ``phase:*`` span schema the simulator
emits, and wire-level metrics (retransmits, dedup hits, per-peer ack
RTT, unacked depth) accumulate in the bundled registry.
``--telemetry-file PATH`` additionally spools the trace to JSONL on
shutdown, so a crashed collector can still recover the records.

On startup the daemon prints one machine-readable line::

    REPRO-NET READY kind=node id=<id> host=<host> port=<port>

which is what the cluster harness (and any supervisor) waits for.
"""

from __future__ import annotations

import random
import time
from typing import Any, Dict, Optional

from repro.ids.idspace import IdSpace
from repro.net.datagram import DatagramTransport
from repro.net.faults import FaultPlan
from repro.net.wire import (
    Address,
    node_id_from_wire,
    node_id_to_wire,
    table_to_wire,
)
from repro.network.stats import MessageStats
from repro.obs.instrument import JoinObserver
from repro.obs.remote import DEFAULT_PAGE_LIMIT, RemoteTelemetry
from repro.protocol.network_init import single_node_table
from repro.protocol.node import ProtocolNode
from repro.protocol.status import NodeStatus
from repro.runtime.realtime import AsyncioRuntime
from repro.runtime.interface import WallClockBudgetExceeded

#: Exit codes (the cluster harness keys on these).
EXIT_OK = 0
EXIT_NO_GATEWAY = 3
EXIT_BUDGET = 4

#: Protocol-time pause between gateway-discovery retries.
DISCOVERY_RETRY_DELAY = 100.0
MAX_DISCOVERY_ATTEMPTS = 20

#: Grace (protocol units) between a stop/depart trigger and socket
#: teardown, so final acks and control responses drain first.
SHUTDOWN_GRACE = 50.0


class NodeDaemonConfig:
    """Everything ``repro node`` parses off its command line."""

    def __init__(
        self,
        listen: Address,
        base: int = 16,
        num_digits: int = 8,
        node_id: Optional[str] = None,
        rendezvous: Optional[Address] = None,
        bootstrap: Optional[Address] = None,
        seed_node: bool = False,
        time_scale: float = 0.001,
        heartbeat: float = 500.0,
        wall_budget: Optional[float] = None,
        loss: float = 0.0,
        duplicate: float = 0.0,
        reorder: float = 0.0,
        fault_seed: int = 0,
        telemetry: bool = False,
        telemetry_file: Optional[str] = None,
    ):
        if not seed_node and rendezvous is None and bootstrap is None:
            raise ValueError(
                "a joining daemon needs --rendezvous or --bootstrap "
                "(or pass --seed-node to start a new network)"
            )
        self.listen = listen
        self.base = base
        self.num_digits = num_digits
        self.node_id = node_id
        self.rendezvous = rendezvous
        self.bootstrap = bootstrap
        self.seed_node = seed_node
        self.time_scale = time_scale
        self.heartbeat = heartbeat
        self.wall_budget = wall_budget
        self.loss = loss
        self.duplicate = duplicate
        self.reorder = reorder
        self.fault_seed = fault_seed
        # --telemetry-file implies --telemetry.
        self.telemetry = bool(telemetry or telemetry_file)
        self.telemetry_file = telemetry_file

    def fault_plan(self) -> Optional[FaultPlan]:
        """The configured fault injection, or ``None`` when clean."""
        if not (self.loss or self.duplicate or self.reorder):
            return None
        return FaultPlan(
            loss=self.loss,
            duplicate=self.duplicate,
            reorder=self.reorder,
            seed=self.fault_seed,
        )


class NodeDaemon:
    """One deployable protocol node."""

    def __init__(self, config: NodeDaemonConfig):
        self.config = config
        self.idspace = IdSpace(config.base, config.num_digits)
        self.runtime = AsyncioRuntime(time_scale=config.time_scale)
        if config.telemetry:
            self.telemetry: Optional[RemoteTelemetry] = RemoteTelemetry(
                spool_path=config.telemetry_file
            )
            stats = MessageStats(registry=self.telemetry.metrics)
            self._join_observer: Optional[JoinObserver] = JoinObserver(
                self.telemetry.observability()
            )
        else:
            self.telemetry = None
            stats = None
            self._join_observer = None
        self.transport = DatagramTransport(
            self.runtime,
            config.listen,
            stats=stats,
            faults=config.fault_plan(),
            rendezvous=config.rendezvous,
            tracer=(
                self.telemetry.tracer if self.telemetry is not None else None
            ),
            metrics=(
                self.telemetry.metrics if self.telemetry is not None else None
            ),
        )
        self.transport.on_control = self._on_control
        self.node: Optional[ProtocolNode] = None
        self.exit_code = EXIT_OK
        self._stopping = False
        self._departed = False
        self._heartbeat_timer = None
        self._gateway_attempts = 0

    # -- startup --------------------------------------------------------

    def start(self) -> Address:
        """Bind, build the protocol node, and (for joiners) begin
        gateway discovery.  Returns the bound address."""
        config = self.config
        addr = self.transport.open()
        if config.node_id is not None:
            node_id = self.idspace.from_string(config.node_id)
        else:
            node_id = self.idspace.hash_name(f"{addr[0]}:{addr[1]}")
        self.node_id = node_id
        if self.telemetry is not None:
            self.telemetry.node = str(node_id)
        if config.seed_node:
            self.node = ProtocolNode(
                node_id,
                self.transport,
                status=NodeStatus.IN_SYSTEM,
                table=single_node_table(node_id),
            )
        else:
            self.node = ProtocolNode(
                node_id, self.transport, status=NodeStatus.COPYING
            )
        self.node.on_phase = self._on_phase
        self.node.on_departed = self._on_departed
        self._announce()
        self._heartbeat_timer = self.runtime.schedule(
            self.config.heartbeat, self._heartbeat
        )
        if not config.seed_node:
            self.runtime.schedule(0.0, self._find_gateway)
        return addr

    def ready_line(self) -> str:
        """The machine-readable startup line supervisors wait for."""
        host, port = self.transport.local_addr
        return (
            f"REPRO-NET READY kind=node id={self.node_id} "
            f"host={host} port={port}"
        )

    def run(self) -> int:
        """Drive the runtime until shutdown; returns the exit code."""
        try:
            self.runtime.run(wall_budget=self.config.wall_budget)
        except WallClockBudgetExceeded:
            self.exit_code = EXIT_BUDGET
        finally:
            self.transport.close()
            self.runtime.close()
            if self.telemetry is not None:
                # Re-spool after the loop stops: catches records from
                # the final grace period (and budget-exceeded exits,
                # which never pass through _shutdown).
                try:
                    self.telemetry.write_spool()
                except OSError:  # pragma: no cover - disk full / perms
                    pass
        return self.exit_code

    # -- gateway discovery ----------------------------------------------

    def _find_gateway(self) -> None:
        if self._stopping or self.node is None:
            return
        if self.node.status is not NodeStatus.COPYING:
            return  # join already under way
        self._gateway_attempts += 1
        if self._gateway_attempts > MAX_DISCOVERY_ATTEMPTS:
            self.exit_code = EXIT_NO_GATEWAY
            self._shutdown()
            return
        if self.config.bootstrap is not None:
            self.transport.control_request(
                self.config.bootstrap, "hello", None, self._on_hello_reply
            )
        else:
            self.transport.control_request(
                self.config.rendezvous,
                "announce",
                self._announce_body(),
                self._on_peers_reply,
            )

    def _on_hello_reply(self, body: Optional[Dict[str, Any]]) -> None:
        if self._join_started():
            return
        if body and body.get("id") is not None:
            gateway = node_id_from_wire(body["id"])
            self.transport.add_peer(gateway, self.config.bootstrap)
            self._begin_join(gateway)
        else:
            self._retry_discovery()

    def _on_peers_reply(self, body: Optional[Dict[str, Any]]) -> None:
        if self._join_started():
            return
        peers = (body or {}).get("peers") or []
        if not peers:
            self._retry_discovery()
            return
        # Deterministic per-node gateway choice over the offered list.
        rng = random.Random(str(self.node_id))
        id_wire, addr = rng.choice(peers)
        gateway = node_id_from_wire(id_wire)
        self.transport.add_peer(gateway, (addr[0], addr[1]))
        self._begin_join(gateway)

    def _join_started(self) -> bool:
        return (
            self._stopping
            or self.node is None
            or self.node.status is not NodeStatus.COPYING
            or self.node.join_began_at is not None
        )

    def _begin_join(self, gateway) -> None:
        if gateway == self.node_id:
            self._retry_discovery()
            return
        self.node.begin_join(gateway)

    def _retry_discovery(self) -> None:
        if not self._stopping:
            self.runtime.schedule(DISCOVERY_RETRY_DELAY, self._find_gateway)

    # -- heartbeat / rendezvous -----------------------------------------

    def _announce_body(self) -> Dict[str, Any]:
        return {
            "id": node_id_to_wire(self.node_id),
            "s": bool(self.node is not None and self.node.status.is_s_node),
        }

    def _announce(self) -> None:
        if self.config.rendezvous is not None and not self._departed:
            self.transport.control_request(
                self.config.rendezvous, "announce", self._announce_body()
            )

    def _heartbeat(self) -> None:
        self._heartbeat_timer = None
        if self._stopping:
            return
        self._announce()
        self._heartbeat_timer = self.runtime.schedule(
            self.config.heartbeat, self._heartbeat
        )

    # -- protocol event hooks -------------------------------------------

    def _on_phase(self, node_id, status, now) -> None:
        if self._join_observer is not None:
            # Same join/phase span schema as the simulator's traces, so
            # the merged cluster trace feeds lifecycle reconstruction
            # and RunReport unchanged.
            self._join_observer.on_phase(node_id, status, now)
        if status is NodeStatus.IN_SYSTEM:
            # Become visible as a gateway the moment we are one.
            self._announce()

    def _on_departed(self, node_id) -> None:
        """The leave protocol completed: deregister and wind down."""
        self._departed = True
        self.node = None
        self.transport.unregister(node_id)
        if self.config.rendezvous is not None:
            self.transport.control_request(
                self.config.rendezvous, "remove",
                {"id": node_id_to_wire(node_id)},
            )
        self._shutdown()

    # -- control protocol -----------------------------------------------

    def _on_control(
        self, op: str, body: Dict[str, Any], addr: Address
    ) -> Optional[Dict[str, Any]]:
        node = self.node
        if op == "hello":
            return {
                "id": node_id_to_wire(self.node_id),
                "s": bool(node is not None and node.status.is_s_node),
            }
        if op == "status":
            return self._status_body()
        if op == "table":
            if node is None:
                return {"error": "departed"}
            return {
                "id": node_id_to_wire(self.node_id),
                "status": node.status.value,
                "table": table_to_wire(node.table),
            }
        if op == "leave":
            if node is None or node.status is not NodeStatus.IN_SYSTEM:
                return {"ok": False, "error": "not in_system"}
            self.runtime.schedule(0.0, node.begin_leave)
            return {"ok": True}
        if op == "stop":
            self.runtime.schedule(SHUTDOWN_GRACE, self._shutdown)
            self._stopping = True
            return {"ok": True}
        if op == "clock":
            # Clock-sync probe: wall + protocol time read back-to-back,
            # so a collector can anchor this daemon's timeline.  Served
            # even without telemetry (it only reads clocks).
            return {
                "wall": time.time(),
                "now": self.runtime.now,
                "time_scale": self.config.time_scale,
            }
        if op == "telemetry":
            if self.telemetry is None:
                return {"error": "telemetry disabled"}
            body = body or {}
            page = self.telemetry.export_page(
                spans_from=int(body.get("spans_from", 0)),
                events_from=int(body.get("events_from", 0)),
                limit=int(body.get("limit", DEFAULT_PAGE_LIMIT)),
            )
            page["now"] = self.runtime.now
            page["time_scale"] = self.config.time_scale
            return page
        if op == "metrics":
            if self.telemetry is None:
                return {"error": "telemetry disabled"}
            return {
                "node": self.telemetry.node,
                "metrics": self.telemetry.metrics.snapshot(),
            }
        return {"error": f"unknown op: {op}"}

    def _status_body(self) -> Dict[str, Any]:
        node = self.node
        stats = self.transport.stats
        counters = dict(self.transport.counters)
        body: Dict[str, Any] = {
            "id": node_id_to_wire(self.node_id),
            "now": self.runtime.now,
            "events": self.runtime.events_fired,
            "net": counters,
            # The wire ledger a harness asserts against (e.g. "a clean
            # wire retransmits nothing"): protocol messages sent vs
            # wire-level retransmissions/dedups/acks, and what is still
            # awaiting an ack right now.
            "wire": {
                "sent": stats.total_messages,
                "retransmitted": stats.total_retransmitted,
                "deduped": counters.get("duplicates_suppressed", 0),
                "acked": counters.get("acks_received", 0),
                "gave_up": counters.get("gave_up", 0),
                "unacked": self.transport.unacked_count,
            },
            "peers_known": len(self.transport.peers),
            "telemetry": self.telemetry is not None,
        }
        if node is None:
            body["status"] = "departed"
            body["s"] = False
        else:
            body["status"] = node.status.value
            body["s"] = bool(node.status.is_s_node)
            body["table_filled"] = node.table.filled_count()
            body["theorem3"] = (
                stats.sent_by(self.node_id, "CpRstMsg")
                + stats.sent_by(self.node_id, "JoinWaitMsg")
            )
            body["join_noti_sent"] = stats.sent_by(
                self.node_id, "JoinNotiMsg"
            )
        return body

    # -- shutdown -------------------------------------------------------

    def _shutdown(self) -> None:
        self._stopping = True
        if self._heartbeat_timer is not None:
            self._heartbeat_timer.cancel()
            self._heartbeat_timer = None
        self.transport.close()
        if self.telemetry is not None:
            try:
                self.telemetry.write_spool()
            except OSError:  # pragma: no cover - disk full / perms
                pass
        self.runtime.kick()


def run_node_daemon(config: NodeDaemonConfig) -> int:
    """Entry point for ``repro node``: start, print the READY line,
    serve until shutdown."""
    daemon = NodeDaemon(config)
    daemon.start()
    print(daemon.ready_line(), flush=True)
    return daemon.run()


__all__ = [
    "EXIT_BUDGET",
    "EXIT_NO_GATEWAY",
    "EXIT_OK",
    "NodeDaemon",
    "NodeDaemonConfig",
    "run_node_daemon",
]
