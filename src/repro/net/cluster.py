"""Multi-process cluster harness: the deployment tier's experiment.

``repro cluster --nodes N --joins M`` boots one rendezvous service and
``N`` node daemons as real OS processes on localhost, lets the first
``N - M`` members form a base network sequentially, then fires the
last ``M`` joins *concurrently* -- the exact scenario of the paper's
Section 4 -- and verifies the result over live UDP:

* every joiner reaches *in_system* (status polled over the control
  protocol);
* the union of live neighbor tables (fetched with the ``table``
  control op) satisfies Definition 3.8, checked by the same
  :func:`~repro.consistency.checker.check_consistency` the simulator
  tier uses;
* each join sent at most ``d + 1`` CpRstMsg + JoinWaitMsg (Theorem 3),
  read from each daemon's transport statistics.

With ``--telemetry DIR`` every daemon additionally records a causal
trace (``--telemetry-file`` spools per daemon into ``DIR``); after
convergence the harness pulls and clock-aligns all of them
(:class:`~repro.net.collect.TelemetryCollector`), writes the merged
``DIR/merged-trace.jsonl`` plus a ``DIR/run-report.json`` in the same
schema ``repro report --json`` emits for simulator runs, validates the
merged :class:`~repro.obs.causality.CausalForest` (zero causal-order
violations folds into the report's ``ok``), and embeds per-join
critical paths, clock offsets and the clean-wire retransmission ledger
in the report.

The harness is deliberately outside the runtime: it is a plain
blocking driver (``subprocess`` + :class:`~repro.net.control.ControlClient`)
so a failure mode in the system under test cannot deadlock its judge.

Every run produces a JSON-serializable report dict; the CLI writes it
with ``--report out.json`` and the CI smoke job archives it as a
build artifact.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import threading
import time
from typing import Any, Dict, IO, List, Optional

from repro.consistency.checker import check_consistency
from repro.net.collect import TelemetryCollector, clock_table
from repro.net.control import ControlClient
from repro.net.wire import (
    Address,
    format_hostport,
    node_id_from_wire,
    table_from_wire,
)
from repro.obs.causality import CausalForest
from repro.obs.export import write_trace_records
from repro.obs.report import RunReport

#: How long (seconds) to wait for a daemon's READY line.
READY_TIMEOUT = 15.0

#: Default wall-clock budget (seconds) for every join to converge.
DEFAULT_CONVERGE_TIMEOUT = 60.0

POLL_INTERVAL = 0.1


class ClusterError(RuntimeError):
    """The cluster failed to boot or converge."""


class _Proc:
    """One supervised child process with a READY-line reader."""

    def __init__(self, name: str, argv: List[str]):
        self.name = name
        self.argv = argv
        env = dict(os.environ)
        src_root = os.path.dirname(
            os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
        )
        existing = env.get("PYTHONPATH")
        env["PYTHONPATH"] = (
            src_root if not existing
            else src_root + os.pathsep + existing
        )
        self.proc = subprocess.Popen(
            argv,
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
            env=env,
        )
        self.ready: Optional[Dict[str, str]] = None
        self.lines: List[str] = []
        self._ready_event = threading.Event()
        self._reader = threading.Thread(target=self._read, daemon=True)
        self._reader.start()

    def _read(self) -> None:
        stream: Optional[IO[str]] = self.proc.stdout
        if stream is None:  # pragma: no cover - Popen(stdout=PIPE) above
            return
        for line in stream:
            line = line.rstrip("\n")
            self.lines.append(line)
            if line.startswith("REPRO-NET READY"):
                fields = dict(
                    part.split("=", 1)
                    for part in line.split()
                    if "=" in part
                )
                self.ready = fields
                self._ready_event.set()
        self._ready_event.set()  # EOF: unblock waiters either way

    def wait_ready(self, timeout: float = READY_TIMEOUT) -> Dict[str, str]:
        self._ready_event.wait(timeout)
        if self.ready is None:
            raise ClusterError(
                f"{self.name} did not report READY within {timeout}s "
                f"(exit={self.proc.poll()}):\n" + "\n".join(self.lines[-20:])
            )
        return self.ready

    @property
    def addr(self) -> Address:
        ready = self.ready or {}
        return (ready["host"], int(ready["port"]))

    def stop(self, grace: float = 3.0) -> None:
        if self.proc.poll() is None:
            self.proc.terminate()
            try:
                self.proc.wait(grace)
            except subprocess.TimeoutExpired:
                self.proc.kill()
                self.proc.wait()


class ClusterConfig:
    """Shape of one cluster experiment."""

    def __init__(
        self,
        nodes: int = 5,
        joins: int = 3,
        base: int = 4,
        num_digits: int = 4,
        loss: float = 0.0,
        duplicate: float = 0.0,
        fault_seed: int = 1,
        time_scale: float = 0.001,
        converge_timeout: float = DEFAULT_CONVERGE_TIMEOUT,
        python: Optional[str] = None,
        telemetry_dir: Optional[str] = None,
    ):
        if nodes < 2:
            raise ValueError("a cluster needs at least 2 nodes")
        if not 0 < joins < nodes:
            raise ValueError(
                f"joins must be in [1, nodes-1]: joins={joins} nodes={nodes}"
            )
        self.nodes = nodes
        self.joins = joins
        self.base = base
        self.num_digits = num_digits
        self.loss = loss
        self.duplicate = duplicate
        self.fault_seed = fault_seed
        self.time_scale = time_scale
        self.converge_timeout = converge_timeout
        self.python = python or sys.executable
        self.telemetry_dir = telemetry_dir


def run_cluster(
    config: ClusterConfig, log=print
) -> Dict[str, Any]:
    """Run one cluster experiment; returns the report dict.

    Raises :class:`ClusterError` if the cluster fails to boot; a
    cluster that boots but fails verification still returns a report
    (with ``ok: false``) so the caller can archive it.
    """
    harness = _ClusterHarness(config, log)
    try:
        return harness.run()
    finally:
        harness.teardown()


class _ClusterHarness:
    def __init__(self, config: ClusterConfig, log):
        self.config = config
        self.log = log
        self.rendezvous: Optional[_Proc] = None
        self.daemons: List[_Proc] = []
        self.client = ControlClient(timeout=0.5, retries=6)
        self.started_at = time.monotonic()
        if config.telemetry_dir:
            os.makedirs(config.telemetry_dir, exist_ok=True)

    # -- process plumbing ----------------------------------------------

    def _spawn_rendezvous(self) -> _Proc:
        proc = _Proc(
            "rendezvous",
            [self.config.python, "-m", "repro", "rendezvous",
             "--listen", "127.0.0.1:0"],
        )
        proc.wait_ready()
        return proc

    def _spawn_node(self, name: str, seed_node: bool = False) -> _Proc:
        config = self.config
        argv = [
            config.python, "-m", "repro", "node",
            "--listen", "127.0.0.1:0",
            "--rendezvous", format_hostport(self.rendezvous.addr),
            "--base", str(config.base),
            "--num-digits", str(config.num_digits),
            "--time-scale", str(config.time_scale),
        ]
        if seed_node:
            argv.append("--seed-node")
        if config.telemetry_dir:
            argv += [
                "--telemetry-file",
                os.path.join(config.telemetry_dir, f"trace-{name}.jsonl"),
            ]
        if config.loss:
            argv += ["--loss", str(config.loss),
                     "--fault-seed", str(config.fault_seed)]
        if config.duplicate:
            argv += ["--duplicate", str(config.duplicate),
                     "--fault-seed", str(config.fault_seed)]
        proc = _Proc(name, argv)
        self.daemons.append(proc)
        proc.wait_ready()
        return proc

    # -- convergence ----------------------------------------------------

    def _statuses(self) -> List[Optional[Dict[str, Any]]]:
        return [
            self.client.try_request(d.addr, "status", timeout=0.5)
            for d in self.daemons
        ]

    def _await_in_system(
        self, procs: List[_Proc], timeout: float
    ) -> None:
        deadline = time.monotonic() + timeout
        waiting = {id(p): p for p in procs}
        while waiting:
            for key, proc in list(waiting.items()):
                status = self.client.try_request(
                    proc.addr, "status", timeout=0.3
                )
                if status and status.get("status") == "in_system":
                    del waiting[key]
            if not waiting:
                return
            if time.monotonic() > deadline:
                stuck = []
                for proc in waiting.values():
                    status = self.client.try_request(
                        proc.addr, "status", timeout=0.3
                    )
                    state = (status or {}).get("status", "unreachable")
                    stuck.append(f"{proc.name}({state})")
                raise ClusterError(
                    f"joins did not converge within {timeout}s; "
                    f"still waiting on: {', '.join(stuck)}"
                )
            time.sleep(POLL_INTERVAL)

    # -- verification ---------------------------------------------------

    def _collect_tables(self):
        tables = {}
        statuses = {}
        for proc in self.daemons:
            body = self.client.try_request(proc.addr, "table", timeout=0.5)
            if not body or "table" not in body:
                raise ClusterError(f"{proc.name} did not return its table")
            node_id = node_id_from_wire(body["id"])
            tables[node_id] = table_from_wire(body["table"])
            statuses[node_id] = body["status"]
        return tables, statuses

    def _collect_telemetry(self) -> Dict[str, Any]:
        """Pull, align and merge every daemon's trace; write the
        merged JSONL + run report into the telemetry dir and return
        the report section summarizing them."""
        out_dir = self.config.telemetry_dir
        collector = TelemetryCollector(self.client)
        addrs = [proc.addr for proc in self.daemons]
        traces, spans, events = collector.collect(addrs)
        trace_path = os.path.join(out_dir, "merged-trace.jsonl")
        records = write_trace_records(spans, events, trace_path)
        forest = CausalForest.from_event_records(events)
        problems = forest.validate()
        joins: Dict[str, Any] = {}
        for joiner, tree in sorted(forest.join_trees().items()):
            root_id = tree[0].msg_id
            joins[joiner] = {
                "messages": len(tree),
                "depth": forest.depth(root_id),
                "critical_path": [
                    {"type": rec.type, "src": rec.src, "dst": rec.dst}
                    for rec in forest.critical_path(root_id)
                ],
            }
        report_path = os.path.join(out_dir, "run-report.json")
        run_report = RunReport(spans, events)
        with open(report_path, "w", encoding="utf-8") as fh:
            json.dump(run_report.to_json_dict(), fh, indent=2,
                      sort_keys=True)
            fh.write("\n")
        return {
            "dir": out_dir,
            "trace_file": trace_path,
            "report_file": report_path,
            "records": records,
            "daemons_pulled": len(traces),
            "daemons_expected": len(addrs),
            "complete": len(traces) == len(addrs),
            "clocks": clock_table(traces),
            "causal_ok": not problems,
            "causal_problems": problems[:20],
            "join_trees": joins,
        }

    def run(self) -> Dict[str, Any]:
        config = self.config
        log = self.log
        log(
            f"[cluster] booting rendezvous + {config.nodes} node "
            f"daemons ({config.joins} concurrent joins"
            + (f", loss={config.loss:.0%}" if config.loss else "")
            + ")"
        )
        self.rendezvous = self._spawn_rendezvous()
        log(
            "[cluster] rendezvous up at "
            f"{format_hostport(self.rendezvous.addr)}"
        )

        # Base network: seed node, then sequential joins.
        base_count = config.nodes - config.joins
        seed = self._spawn_node("node-0", seed_node=True)
        self._await_in_system([seed], config.converge_timeout)
        for i in range(1, base_count):
            proc = self._spawn_node(f"node-{i}")
            self._await_in_system([proc], config.converge_timeout)
        log(f"[cluster] base network of {base_count} in_system")

        # The experiment: M concurrent joins.
        joiners = [
            self._spawn_node(f"node-{base_count + j}")
            for j in range(config.joins)
        ]
        join_started = time.monotonic()
        self._await_in_system(joiners, config.converge_timeout)
        join_seconds = time.monotonic() - join_started
        log(
            f"[cluster] {config.joins} concurrent joins converged in "
            f"{join_seconds:.2f}s"
        )

        # Verification over live tables.
        tables, statuses = self._collect_tables()
        report_obj = check_consistency(tables)
        statuses_all = self._statuses()
        theorem3_bound = config.num_digits + 1
        theorem3 = []
        net_totals: Dict[str, int] = {}
        for status in statuses_all:
            if not status:
                continue
            for key, value in (status.get("net") or {}).items():
                net_totals[key] = net_totals.get(key, 0) + value
            if "theorem3" in status:
                theorem3.append({
                    "id": str(node_id_from_wire(status["id"])),
                    "count": status["theorem3"],
                })
        theorem3_ok = all(
            entry["count"] <= theorem3_bound for entry in theorem3
        )
        all_in_system = all(
            state == "in_system" for state in statuses.values()
        )
        telemetry_section = (
            self._collect_telemetry() if config.telemetry_dir else None
        )
        ok = bool(
            report_obj.consistent and theorem3_ok and all_in_system
            and (
                telemetry_section is None
                or (
                    telemetry_section["causal_ok"]
                    and telemetry_section["complete"]
                )
            )
        )
        # The clean-wire ledger: on a lossless localhost wire the ARQ
        # should (almost) never fire.  Recorded rather than folded into
        # ``ok`` -- the 40ms retransmit timer can trip spuriously on a
        # heavily loaded CI box without anything being wrong.
        clean_wire = {
            "expected_clean": not (config.loss or config.duplicate),
            "retransmits": net_totals.get("retransmits", 0),
            "gave_up": net_totals.get("gave_up", 0),
        }
        clean_wire["clean"] = (
            clean_wire["retransmits"] == 0 and clean_wire["gave_up"] == 0
        )
        report = {
            "ok": ok,
            "nodes": config.nodes,
            "concurrent_joins": config.joins,
            "base": config.base,
            "num_digits": config.num_digits,
            "loss": config.loss,
            "duplicate": config.duplicate,
            "join_wall_seconds": round(join_seconds, 3),
            "consistency": {
                "consistent": report_obj.consistent,
                "nodes_checked": report_obj.nodes_checked,
                "entries_checked": report_obj.entries_checked,
                "violations": [str(v) for v in report_obj.violations[:20]],
            },
            "all_in_system": all_in_system,
            "theorem3": {
                "bound": theorem3_bound,
                "ok": theorem3_ok,
                "per_node": theorem3,
            },
            "net": net_totals,
            "clean_wire": clean_wire,
        }
        if telemetry_section is not None:
            report["telemetry"] = telemetry_section
            log(
                f"[cluster] telemetry merged: "
                f"{telemetry_section['records']} records from "
                f"{telemetry_section['daemons_pulled']} daemon(s), "
                f"causal_ok={telemetry_section['causal_ok']}"
            )
        log(
            f"[cluster] consistency={report_obj.consistent} "
            f"theorem3<={theorem3_bound}:{theorem3_ok} "
            f"all_in_system={all_in_system}"
            + (
                f" retransmits={net_totals.get('retransmits', 0)}"
                if config.loss or config.duplicate else ""
            )
        )
        return report

    def teardown(self) -> None:
        for proc in self.daemons:
            self.client.try_request(proc.addr, "stop", timeout=0.3)
        if self.rendezvous is not None:
            self.client.try_request(self.rendezvous.addr, "stop", timeout=0.3)
        deadline = time.monotonic() + 3.0
        everyone = list(self.daemons) + (
            [self.rendezvous] if self.rendezvous else []
        )
        for proc in everyone:
            remaining = deadline - time.monotonic()
            if remaining > 0 and proc.proc.poll() is None:
                try:
                    proc.proc.wait(remaining)
                except subprocess.TimeoutExpired:
                    pass
            proc.stop()
        self.client.close()


def write_report(report: Dict[str, Any], path: str) -> None:
    """Write a cluster report as pretty-printed JSON."""
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")


__all__ = [
    "ClusterConfig",
    "ClusterError",
    "run_cluster",
    "write_report",
]
