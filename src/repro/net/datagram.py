"""UDP datagram transport: the protocol stack over real sockets.

This is the real-wire sibling of the in-memory
:class:`~repro.network.transport.Transport`.  It exposes the same
surface the protocol stack uses (``send`` / ``send_lossy`` /
``register`` / ``unregister`` / ``runtime`` / ``stats`` /
``drop_filter``), so a :class:`~repro.protocol.node.ProtocolNode`
constructed over it runs unmodified -- but every message now crosses a
kernel socket as one UDP datagram in the
:mod:`repro.net.wire` frame format.

Differences from the in-memory transport, all forced by real networks:

* **One node per transport.**  A process hosts one protocol node; the
  rest of the membership is reachable only by address.  Peer addresses
  are learned three ways: seeded statically (cluster harness), learned
  from the source address of incoming datagrams (every received
  protocol message teaches us where its sender listens, since nodes
  send from their bound socket), or resolved through a rendezvous
  service (see :mod:`repro.net.rendezvous`) with queue-and-retry for
  IDs nobody has introduced yet.
* **Loss is real, so reliability is explicit.**  The paper's protocol
  (and its proofs) assume reliable channels; UDP gives none.  Every
  protocol datagram carries a per-sender sequence number and is
  retransmitted on a runtime timer until acked (bounded retries,
  exponential backoff); receivers ack every copy and suppress
  duplicates by ``(sender, seq)``.  The retransmission timer *is* the
  wire-level recovery timer the fault-injection acceptance tests
  exercise: drop a ``JoinNotiMsg`` on the floor and the timer fires
  and re-delivers it.
* **Datagram ceiling.**  Frames are refused past
  :data:`~repro.runtime.codec.MAX_DATAGRAM_BYTES` -- a table snapshot
  that does not fit is a protocol-sizing bug surfaced loudly, not a
  silent kernel truncation.

Handler atomicity is preserved: datagram callbacks never invoke
protocol handlers directly; they schedule delivery through the
:class:`~repro.runtime.realtime.AsyncioRuntime` mailbox, serialized
with every timer the protocol arms.

Observability mirrors the in-memory transport when a live
:class:`~repro.obs.tracer.Tracer` is attached: every protocol send is
causally stamped (``msg_id``/``parent_id``/``trace_id``), the ids
cross the wire inside the message envelope, and delivery re-installs
the received message as the causal parent of everything its handler
sends -- so a :class:`~repro.obs.causality.CausalForest` built from
the *merged* traces of many daemons reconstructs the same join trees
the simulator produces.  Ids are ``"<node-id>#<counter>"`` strings
(zero-padded), unique across a cluster without coordination.  An
optional :class:`~repro.obs.metrics.MetricsRegistry` additionally
collects what only a real wire can show: per-peer ack RTT (first
transmissions only -- Karn's rule), retransmit and dedup counts, the
unacked-queue depth, and rendezvous resolve latency.
"""

from __future__ import annotations

import asyncio
from typing import Any, Callable, Dict, List, Optional, Set, TYPE_CHECKING

from repro.ids.digits import NodeId
from repro.network.message import Message
from repro.network.stats import MessageStats
from repro.net.faults import FaultInjector, FaultPlan
from repro.net.wire import (
    ACK,
    Address,
    CTL,
    MSG,
    RSP,
    ack_frame,
    ctl_frame,
    decode_frame,
    encode_frame,
    frame_message,
    msg_frame,
    node_id_to_wire,
    rsp_frame,
)
from repro.obs.metrics import Histogram, MetricsRegistry
from repro.obs.tracer import Tracer
from repro.runtime.codec import CodecError
from repro.runtime.realtime import AsyncioRuntime

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.network.node import NetworkNode

#: Per-sender duplicate-suppression window (sequence numbers kept).
DEDUP_WINDOW = 4096


class _Pending:
    """One protocol datagram awaiting acknowledgment."""

    __slots__ = (
        "seq", "dst", "message", "data", "retries", "timer", "sent_wall"
    )

    def __init__(self, seq: int, dst: NodeId, message: Message, data: bytes):
        self.seq = seq
        self.dst = dst
        self.message = message
        self.data = data
        self.retries = 0
        self.timer = None
        #: Wall-clock (loop) time of the first transmission; the RTT
        #: sample base.  ``None`` until the datagram first hits the wire.
        self.sent_wall: Optional[float] = None


class _PendingControl:
    """One control request awaiting its response."""

    __slots__ = ("rid", "addr", "data", "on_reply", "retries", "timer")

    def __init__(self, rid: int, addr: Address, data: bytes,
                 on_reply: Optional[Callable[[Optional[dict]], None]]):
        self.rid = rid
        self.addr = addr
        self.data = data
        self.on_reply = on_reply
        self.retries = 0
        self.timer = None


class _SocketAdapter(asyncio.DatagramProtocol):
    """Glue between the asyncio datagram endpoint and the transport."""

    def __init__(self, owner: "DatagramTransport"):
        self.owner = owner

    def datagram_received(self, data: bytes, addr) -> None:
        self.owner._on_datagram(data, (addr[0], addr[1]))

    def error_received(self, exc) -> None:  # pragma: no cover - OS-dependent
        self.owner.counters["socket_errors"] += 1


class DatagramTransport:
    """Reliable protocol messaging over one UDP socket.

    ``runtime`` must be an :class:`AsyncioRuntime`: the socket endpoint
    lives on its private loop and deliveries drain through its mailbox.
    Timeouts are in protocol time units (scaled by the runtime's
    ``time_scale``), so the same configuration behaves identically at
    any wall-clock scale.
    """

    def __init__(
        self,
        runtime: AsyncioRuntime,
        local_addr: Address,
        stats: Optional[MessageStats] = None,
        faults: Optional[FaultPlan] = None,
        rendezvous: Optional[Address] = None,
        retransmit_timeout: float = 40.0,
        max_retries: int = 10,
        control_timeout: float = 60.0,
        max_control_retries: int = 5,
        resolve_retry_delay: float = 50.0,
        max_resolve_attempts: int = 12,
        tracer: Optional[Tracer] = None,
        metrics: Optional[MetricsRegistry] = None,
    ):
        self.runtime = runtime
        self.local_addr = local_addr
        self.stats = stats if stats is not None else MessageStats()
        self.rendezvous = rendezvous
        # A disabled tracer (NullTracer) is normalized to None, same as
        # the in-memory transport: with telemetry off, the send path is
        # the exact pre-instrumentation code.
        self._tracer = tracer if tracer is not None and tracer.enabled else None
        self.metrics = metrics
        if metrics is not None:
            self._m_unacked = metrics.gauge("net_unacked_depth")
            self._m_retransmits = metrics.counter("net_retransmits")
            self._m_dedup = metrics.counter("net_dedup_hits")
            self._m_gave_up = metrics.counter("net_gave_up")
            self._m_resolve = metrics.histogram("net_resolve_ms")
            # Per-peer ack RTT histograms, cached by destination.
            self._m_rtt: Dict[NodeId, Histogram] = {}
        else:
            self._m_unacked = None
            self._m_retransmits = None
            self._m_dedup = None
            self._m_gave_up = None
            self._m_resolve = None
            self._m_rtt = {}
        self.retransmit_timeout = retransmit_timeout
        self.max_retries = max_retries
        self.control_timeout = control_timeout
        self.max_control_retries = max_control_retries
        self.resolve_retry_delay = resolve_retry_delay
        self.max_resolve_attempts = max_resolve_attempts
        self.faults = FaultInjector(faults) if faults is not None else None
        #: Same contract as the in-memory transport's hook: drop
        #: outbound messages the filter matches (applied pre-wire).
        self.drop_filter: Optional[Callable[[Message, NodeId], bool]] = None
        #: Control-protocol server hook: ``on_control(op, body, addr)``
        #: returns a response body dict (or None for no response).
        self.on_control: Optional[
            Callable[[str, dict, Address], Optional[dict]]
        ] = None
        self.peers: Dict[NodeId, Address] = {}
        self.counters: Dict[str, int] = {
            "datagrams_sent": 0,
            "datagrams_received": 0,
            "retransmits": 0,
            "gave_up": 0,
            "duplicates_suppressed": 0,
            "malformed": 0,
            "acks_received": 0,
            "control_requests": 0,
            "control_timeouts": 0,
            "resolve_failures": 0,
            "socket_errors": 0,
        }
        self._node: Optional["NetworkNode"] = None
        self._local_id: Optional[NodeId] = None
        self._endpoint = None
        self._next_seq = 1
        self._next_rid = 1
        self._unacked: Dict[int, _Pending] = {}
        self._pending_ctl: Dict[int, _PendingControl] = {}
        self._seen: Dict[NodeId, Set[int]] = {}
        self._awaiting_addr: Dict[NodeId, List[_Pending]] = {}
        self._resolving: Set[NodeId] = set()
        self._resolve_started: Dict[NodeId, float] = {}
        self._closed = False
        # Causal-stamping state (tracing only): the message currently
        # being handled, and the next per-process counter.  The stamp
        # prefix binds ids to this node, keeping them cluster-unique.
        self._cause: Optional[Message] = None
        self._next_msg_num = 1
        self._stamp_prefix: Optional[str] = None

    # -- lifecycle ------------------------------------------------------

    def open(self) -> Address:
        """Bind the socket on the runtime's loop; returns the bound
        address (resolving port 0 to the kernel-assigned port)."""
        loop = self.runtime.loop

        async def _bind():
            return await loop.create_datagram_endpoint(
                lambda: _SocketAdapter(self), local_addr=self.local_addr
            )

        endpoint, _ = loop.run_until_complete(_bind())
        self._endpoint = endpoint
        sockname = endpoint.get_extra_info("sockname")
        self.local_addr = (sockname[0], sockname[1])
        return self.local_addr

    def close(self) -> None:
        """Drop all in-flight state and close the socket."""
        self._closed = True
        for pending in list(self._unacked.values()):
            if pending.timer is not None:
                pending.timer.cancel()
        self._unacked.clear()
        for ctl in list(self._pending_ctl.values()):
            if ctl.timer is not None:
                ctl.timer.cancel()
        self._pending_ctl.clear()
        self._awaiting_addr.clear()
        self._resolving.clear()
        self._resolve_started.clear()
        if self._endpoint is not None:
            self._endpoint.close()
            self._endpoint = None

    # -- membership (transport contract) --------------------------------

    def register(self, node: "NetworkNode") -> None:
        """Attach the single local protocol node."""
        if self._node is not None:
            raise ValueError(
                f"transport already hosts {self._local_id}; one node per "
                f"datagram transport"
            )
        self._node = node
        self._local_id = node.node_id
        self._stamp_prefix = str(node.node_id)

    def unregister(self, node_id: NodeId) -> None:
        """Detach the local node (it departed); later datagrams for it
        are dropped on the floor like any dead UDP endpoint's."""
        if node_id == self._local_id:
            self._node = None
        else:
            self.peers.pop(node_id, None)

    def knows(self, node_id: NodeId) -> bool:
        """True iff ``node_id`` is the local node or has a known address."""
        return node_id == self._local_id or node_id in self.peers

    def add_peer(self, node_id: NodeId, addr: Address) -> None:
        """Statically seed (or refresh) a peer's address, flushing any
        messages queued awaiting its resolution."""
        self.peers[node_id] = addr
        queued = self._awaiting_addr.pop(node_id, None)
        self._resolving.discard(node_id)
        started = self._resolve_started.pop(node_id, None)
        if started is not None and self._m_resolve is not None:
            self._m_resolve.observe(
                (self.runtime.loop.time() - started) * 1000.0
            )
        if queued:
            for pending in queued:
                self._transmit(pending)

    # -- send path (transport contract) ----------------------------------

    def send(self, dst: NodeId, message: Message) -> None:
        """Send ``message`` to ``dst`` reliably (acked, retransmitted)."""
        self._dispatch(dst, message)

    def send_lossy(self, dst: NodeId, message: Message) -> bool:
        """Like :meth:`send`; over UDP the lossy path *is* the normal
        path (probes to dead peers simply exhaust retries and are
        accounted as drops).  Returns whether a send was attempted."""
        self._dispatch(dst, message)
        return True

    @property
    def tracer(self) -> Optional[Tracer]:
        """The live tracer, or ``None`` when tracing is off."""
        return self._tracer

    @property
    def unacked_count(self) -> int:
        """Protocol datagrams currently in flight (sent, not acked)."""
        return len(self._unacked)

    def _stamp(self, message: Message) -> None:
        """Assign ``message`` its causal identity (tracing path only).

        Same semantics as the in-memory transport's ``_stamp``, but
        ids are ``"<node-id>#<counter>"`` strings so that the stamps
        of independent daemons never collide in a merged trace.  The
        counter is zero-padded: lexicographic order of one node's ids
        is its send order, which keeps forest tie-breaks meaningful.
        A cause whose own ``msg_id`` is ``None`` (sent by a peer with
        tracing off) roots a new tree, exactly as a spontaneous send.
        """
        msg_id = f"{self._stamp_prefix}#{self._next_msg_num:08d}"
        self._next_msg_num += 1
        message.msg_id = msg_id
        cause = self._cause
        if cause is None or cause.msg_id is None:
            message.trace_id = msg_id
        else:
            message.parent_id = cause.msg_id
            message.trace_id = (
                cause.trace_id if cause.trace_id is not None else cause.msg_id
            )

    def _set_unacked_gauge(self) -> None:
        if self._m_unacked is not None:
            self._m_unacked.set(len(self._unacked))

    def _dispatch(self, dst: NodeId, message: Message) -> None:
        tracer = self._tracer
        if self.drop_filter is not None and self.drop_filter(message, dst):
            self.stats.on_drop(message)
            if tracer is not None:
                self._stamp(message)
                tracer.event(
                    "message.drop",
                    self.runtime.now,
                    type=message.type_name,
                    src=str(message.sender),
                    dst=str(dst),
                    msg=message.msg_id,
                    parent=message.parent_id,
                    trace=message.trace_id,
                )
            return
        self.stats.on_send(message)
        if tracer is not None:
            self._stamp(message)
            tracer.event(
                "message.send",
                self.runtime.now,
                type=message.type_name,
                src=str(message.sender),
                dst=str(dst),
                bytes=message.size_bytes(),
                msg=message.msg_id,
                parent=message.parent_id,
                trace=message.trace_id,
            )
        if dst == self._local_id:
            # Self-delivery short-circuits the socket but still goes
            # through the mailbox for handler atomicity.
            self.runtime.schedule(0.0, self._deliver, message)
            return
        seq = self._next_seq
        self._next_seq = seq + 1
        data = encode_frame(msg_frame(seq, message))
        pending = _Pending(seq, dst, message, data)
        self._unacked[seq] = pending
        self._set_unacked_gauge()
        if dst in self.peers:
            self._transmit(pending)
        else:
            self._queue_unresolved(dst, pending)

    def _transmit(self, pending: _Pending) -> None:
        addr = self.peers.get(pending.dst)
        if addr is None:  # resolution raced a peer removal; retry later
            self._queue_unresolved(pending.dst, pending)
            return
        if pending.sent_wall is None:
            pending.sent_wall = self.runtime.loop.time()
        self._send_raw(pending.data, addr, pending.message.type_name)
        backoff = self.retransmit_timeout * min(2 ** pending.retries, 8)
        pending.timer = self.runtime.schedule(
            backoff, self._on_retransmit, pending.seq
        )

    def _send_raw(
        self, data: bytes, addr: Address, type_name: Optional[str]
    ) -> None:
        """Hand ``data`` to the socket, through the fault injector."""
        if self._endpoint is None:
            return
        if self.faults is None:
            self.counters["datagrams_sent"] += 1
            self._endpoint.sendto(data, addr)
            return
        for delay in self.faults.transmissions(type_name):
            self.counters["datagrams_sent"] += 1
            if delay <= 0.0:
                self._endpoint.sendto(data, addr)
            else:
                self.runtime.schedule(
                    delay, self._sendto_later, (data, addr)
                )

    def _sendto_later(self, payload) -> None:
        data, addr = payload
        if self._endpoint is not None:
            self._endpoint.sendto(data, addr)

    def _on_retransmit(self, seq: int) -> None:
        pending = self._unacked.get(seq)
        if pending is None:
            return
        pending.timer = None
        pending.retries += 1
        if pending.retries > self.max_retries:
            del self._unacked[seq]
            self.counters["gave_up"] += 1
            if self._m_gave_up is not None:
                self._m_gave_up.inc()
            self._set_unacked_gauge()
            self.stats.on_drop(pending.message)
            if self._tracer is not None:
                # Not ``message.drop``: the earlier transmissions may
                # have been handled (only the acks lost), so marking
                # the record dropped could fabricate causal-order
                # violations.  A distinct event keeps the evidence
                # without rewriting the send record.
                self._tracer.event(
                    "message.gave_up",
                    self.runtime.now,
                    type=pending.message.type_name,
                    dst=str(pending.dst),
                    msg=pending.message.msg_id,
                    retries=pending.retries - 1,
                )
            return
        self.counters["retransmits"] += 1
        self.stats.on_retransmit(pending.message)
        if self._m_retransmits is not None:
            self._m_retransmits.inc()
        self._transmit(pending)

    # -- resolution -------------------------------------------------------

    def _queue_unresolved(self, dst: NodeId, pending: _Pending) -> None:
        self._awaiting_addr.setdefault(dst, []).append(pending)
        if dst not in self._resolving:
            self._resolving.add(dst)
            self._resolve_started.setdefault(dst, self.runtime.loop.time())
            self._resolve(dst, 0)

    def _resolve(self, dst: NodeId, attempt: int) -> None:
        if dst in self.peers or dst not in self._resolving:
            return
        if self.rendezvous is None or attempt >= self.max_resolve_attempts:
            self._resolution_failed(dst)
            return

        def on_reply(body: Optional[dict]) -> None:
            if dst in self.peers:
                return
            addr = body.get("addr") if body else None
            if addr:
                self.add_peer(dst, (addr[0], addr[1]))
            else:
                self.runtime.schedule(
                    self.resolve_retry_delay, self._retry_resolve,
                    (dst, attempt + 1),
                )

        self.control_request(
            self.rendezvous, "resolve", {"id": node_id_to_wire(dst)},
            on_reply,
        )

    def _retry_resolve(self, payload) -> None:
        dst, attempt = payload
        self._resolve(dst, attempt)

    def _resolution_failed(self, dst: NodeId) -> None:
        self._resolving.discard(dst)
        self._resolve_started.pop(dst, None)
        self.counters["resolve_failures"] += 1
        for pending in self._awaiting_addr.pop(dst, []):
            self._unacked.pop(pending.seq, None)
            self.stats.on_drop(pending.message)
            if self._tracer is not None:
                # Never transmitted: a true drop (the send record is
                # rewritten as dropped when the forest is rebuilt).
                self._tracer.event(
                    "message.drop",
                    self.runtime.now,
                    type=pending.message.type_name,
                    src=str(pending.message.sender),
                    dst=str(dst),
                    msg=pending.message.msg_id,
                    parent=pending.message.parent_id,
                    trace=pending.message.trace_id,
                )
        self._set_unacked_gauge()

    # -- control protocol -------------------------------------------------

    def control_request(
        self,
        addr: Address,
        op: str,
        body: Optional[dict] = None,
        on_reply: Optional[Callable[[Optional[dict]], None]] = None,
    ) -> int:
        """Send a control request; ``on_reply`` gets the response body,
        or ``None`` after the last retry times out."""
        if self._closed:
            if on_reply is not None:
                on_reply(None)
            return -1
        rid = self._next_rid
        self._next_rid = rid + 1
        data = encode_frame(ctl_frame(rid, op, body))
        ctl = _PendingControl(rid, addr, data, on_reply)
        self._pending_ctl[rid] = ctl
        self.counters["control_requests"] += 1
        self._send_control_raw(data, addr)
        ctl.timer = self.runtime.schedule(
            self.control_timeout, self._on_control_timeout, rid
        )
        return rid

    def _send_control_raw(self, data: bytes, addr: Address) -> None:
        # Control traffic bypasses the fault injector: it is the
        # harness's measurement channel, not the system under test.
        if self._endpoint is not None:
            self.counters["datagrams_sent"] += 1
            self._endpoint.sendto(data, addr)

    def _on_control_timeout(self, rid: int) -> None:
        ctl = self._pending_ctl.get(rid)
        if ctl is None:
            return
        ctl.timer = None
        ctl.retries += 1
        if ctl.retries > self.max_control_retries:
            del self._pending_ctl[rid]
            self.counters["control_timeouts"] += 1
            if ctl.on_reply is not None:
                ctl.on_reply(None)
            return
        self._send_control_raw(ctl.data, ctl.addr)
        ctl.timer = self.runtime.schedule(
            self.control_timeout, self._on_control_timeout, rid
        )

    # -- receive path -----------------------------------------------------

    def _on_datagram(self, data: bytes, addr: Address) -> None:
        self.counters["datagrams_received"] += 1
        try:
            frame = decode_frame(data)
            kind = frame["k"]
            if kind == MSG:
                self._on_msg_frame(frame, addr)
            elif kind == ACK:
                self._on_ack_frame(frame)
            elif kind == CTL:
                self._on_ctl_frame(frame, addr)
            elif kind == RSP:
                self._on_rsp_frame(frame)
        except (CodecError, KeyError, TypeError):
            # Garbage off the wire must never kill a daemon.
            self.counters["malformed"] += 1

    def _on_msg_frame(self, frame: dict, addr: Address) -> None:
        message = frame_message(frame)
        seq = frame["s"]
        sender = message.sender
        # Every datagram teaches us the sender's listen address (nodes
        # send from their bound socket).
        if sender != self._local_id:
            previous = self.peers.get(sender)
            if previous != addr:
                self.add_peer(sender, addr)
        # Ack every copy -- the first ack may have been the lost one.
        self._send_raw(encode_frame(ack_frame(seq)), addr, None)
        seen = self._seen.setdefault(sender, set())
        if seq in seen:
            self.counters["duplicates_suppressed"] += 1
            if self._m_dedup is not None:
                self._m_dedup.inc()
            return
        seen.add(seq)
        if len(seen) > DEDUP_WINDOW:
            for old in sorted(seen)[: DEDUP_WINDOW // 2]:
                seen.discard(old)
        self.runtime.schedule(0.0, self._deliver, message)

    def _deliver(self, message: Message) -> None:
        node = self._node
        if node is None:
            return
        tracer = self._tracer
        if tracer is None:
            node.receive(message)
            return
        tracer.event(
            "message.deliver",
            self.runtime.now,
            type=message.type_name,
            src=str(message.sender),
            dst=str(self._local_id),
            msg=message.msg_id,
        )
        # The received message is the causal parent of everything its
        # handler sends (mirrors the in-memory transport's deliver
        # closure); handler atomicity makes the try/finally airtight.
        self._cause = message
        try:
            node.receive(message)
        finally:
            self._cause = None

    def _on_ack_frame(self, frame: dict) -> None:
        pending = self._unacked.pop(frame["s"], None)
        if pending is None:
            return
        self.counters["acks_received"] += 1
        if pending.timer is not None:
            pending.timer.cancel()
            pending.timer = None
        if (
            self.metrics is not None
            and pending.retries == 0
            and pending.sent_wall is not None
        ):
            # Karn's rule: a retransmitted datagram's ack is ambiguous
            # (which copy does it answer?), so only first-transmission
            # acks contribute RTT samples.
            histogram = self._m_rtt.get(pending.dst)
            if histogram is None:
                histogram = self.metrics.histogram(
                    "net_ack_rtt_ms", peer=str(pending.dst)
                )
                self._m_rtt[pending.dst] = histogram
            histogram.observe(
                (self.runtime.loop.time() - pending.sent_wall) * 1000.0
            )
        self._set_unacked_gauge()
        # The cancel may have been the last pending action: wake the
        # dispatcher so quiescence is observed.
        self.runtime.kick()

    def _on_ctl_frame(self, frame: dict, addr: Address) -> None:
        handler = self.on_control
        if handler is None:
            return
        response = handler(frame["op"], frame.get("b") or {}, addr)
        if response is not None:
            self._send_control_raw(
                encode_frame(rsp_frame(frame["r"], response)), addr
            )

    def _on_rsp_frame(self, frame: dict) -> None:
        ctl = self._pending_ctl.pop(frame["r"], None)
        if ctl is None:
            return
        if ctl.timer is not None:
            ctl.timer.cancel()
            ctl.timer = None
        if ctl.on_reply is not None:
            ctl.on_reply(frame.get("b") or {})
        self.runtime.kick()


__all__ = ["DEDUP_WINDOW", "DatagramTransport"]
