"""``repro top``: live status of every daemon in a deployed cluster.

Polls the rendezvous ``directory`` for the roster, then each daemon's
``status`` control op, and renders one refreshing table::

    NODE      STATUS     S  TABLE  UNACKED  RETX  DEDUP  RTT-MS  NOW
    0112      in_system  *     12        0     0      0     0.4  812.0
    2330      waiting          4         2     1      0     0.7  640.5
    77a1      wrk-idle         -         0     0      0     0.3  15.2

``RTT-MS`` is measured by the poller itself (request round trip), so
the view needs no telemetry enabled on the daemons -- ``status`` is
always served.  Columns that need a live protocol node (status, table
fullness) show ``-`` for departed daemons.  Sweep workers (``repro
worker``, registered with ``kind="worker"``) appear in the same table
with ``wrk-idle`` / ``wrk-busy`` status rows -- they serve the same
``status`` op, just without the protocol-node fields.

The renderer writes plain lines with an ANSI home-and-clear prefix
between refreshes when attached to a TTY, and appends pages when not
(so piping to a file keeps every sample).  ``--iterations`` bounds the
loop (0 = forever), which is also what makes the command testable.
"""

from __future__ import annotations

import sys
import time
from typing import Any, Dict, List, Optional, TextIO, Tuple

from repro.net.collect import TelemetryCollector
from repro.net.control import ControlClient
from repro.net.wire import Address

#: Seconds between refreshes.
DEFAULT_INTERVAL = 1.0

_CLEAR = "\x1b[H\x1b[2J"

_COLUMNS = (
    ("NODE", 10),
    ("STATUS", 10),
    ("S", 2),
    ("TABLE", 6),
    ("UNACKED", 8),
    ("RETX", 5),
    ("DEDUP", 6),
    ("RTT-MS", 7),
    ("NOW", 10),
)


def poll_cluster(
    client: ControlClient, rendezvous: Address
) -> List[Dict[str, Any]]:
    """One sample: the rendezvous roster (cluster daemons *and* sweep
    workers), each daemon's status, and the poller-measured control
    RTT.  Unreachable daemons still get a row (status
    ``unreachable``) -- vanishing silently is the one thing a live
    view must not do."""
    collector = TelemetryCollector(client)
    rows: List[Dict[str, Any]] = []
    for node, addr in collector.discover(rendezvous, workers=True):
        t0 = time.monotonic()
        status = client.try_request(addr, "status")
        rtt_ms = (time.monotonic() - t0) * 1000.0
        row: Dict[str, Any] = {"node": node, "addr": addr}
        if status is None:
            row["status"] = "unreachable"
            rows.append(row)
            continue
        wire = status.get("wire") or {}
        net = status.get("net") or {}
        row.update(
            status=status.get("status", "?"),
            s=bool(status.get("s")),
            table=status.get("table_filled"),
            unacked=wire.get("unacked", 0),
            retransmits=wire.get(
                "retransmitted", net.get("retransmits", 0)
            ),
            deduped=wire.get("deduped", net.get("duplicates_suppressed", 0)),
            rtt_ms=rtt_ms,
            now=status.get("now", 0.0),
            telemetry=bool(status.get("telemetry")),
        )
        rows.append(row)
    return rows


def render_rows(rows: List[Dict[str, Any]]) -> str:
    """The sample as an aligned text table (one string, no trailing
    newline)."""
    def cell(value: Any, width: int) -> str:
        if value is None:
            text = "-"
        elif isinstance(value, bool):
            text = "*" if value else ""
        elif isinstance(value, float):
            text = f"{value:.1f}"
        else:
            text = str(value)
        return text.ljust(width)

    lines = [
        " ".join(name.ljust(width) for name, width in _COLUMNS).rstrip()
    ]
    for row in rows:
        values = (
            row.get("node"),
            row.get("status"),
            row.get("s"),
            row.get("table"),
            row.get("unacked"),
            row.get("retransmits"),
            row.get("deduped"),
            row.get("rtt_ms"),
            row.get("now"),
        )
        lines.append(
            " ".join(
                cell(value, width)
                for value, (_, width) in zip(values, _COLUMNS)
            ).rstrip()
        )
    return "\n".join(lines)


def run_top(
    rendezvous: Address,
    interval: float = DEFAULT_INTERVAL,
    iterations: int = 0,
    out: Optional[TextIO] = None,
    client: Optional[ControlClient] = None,
) -> int:
    """The ``repro top`` loop; returns the number of samples taken.

    ``iterations`` == 0 polls until interrupted.  A caller-supplied
    ``client`` (tests) is not closed; an internally created one is.
    """
    stream = out if out is not None else sys.stdout
    own_client = client is None
    control = client if client is not None else ControlClient(
        timeout=0.5, retries=1
    )
    clear = _CLEAR if stream.isatty() else ""
    taken = 0
    try:
        while True:
            rows = poll_cluster(control, rendezvous)
            header = (
                f"repro top -- {len(rows)} node(s) via "
                f"{rendezvous[0]}:{rendezvous[1]}"
            )
            stream.write(
                f"{clear}{header}\n{render_rows(rows)}\n"
            )
            stream.flush()
            taken += 1
            if iterations and taken >= iterations:
                break
            time.sleep(interval)
    except KeyboardInterrupt:
        pass
    finally:
        if own_client:
            control.close()
    return taken


__all__ = [
    "DEFAULT_INTERVAL",
    "poll_cluster",
    "render_rows",
    "run_top",
]
