"""Datagram frame format for the real-wire tier.

One UDP datagram carries exactly one *frame*: a compact JSON object
whose ``k`` key names the frame kind.  Four kinds cover the whole
deployment tier:

``m``  a protocol message (the :mod:`repro.runtime.codec` envelope is
       embedded verbatim under ``m``) with a per-sender sequence
       number ``s`` -- the unit of the transport's ack/retransmit
       reliability.  When telemetry is on, the envelope includes the
       causal ids (``msg_id`` / ``parent_id`` / ``trace_id``) the
       sending transport stamped, so the receiver records deliveries
       against the *sender's* message identity and cross-process
       causal trees reconstruct; with telemetry off the ids are
       simply absent from the frame (decoders default them to null);
``a``  an acknowledgment of sequence number ``s``;
``c``  a control request (``op`` + body ``b``, request id ``r``) --
       the small out-of-band protocol the node daemon, the rendezvous
       service and the cluster harness speak on the *same* socket as
       the protocol traffic;
``r``  a control response (echoing request id ``r``).

Framing reuses the codec's dict-level API (:func:`message_to_obj`)
so a protocol message is JSON-encoded exactly once, and the codec's
:data:`~repro.runtime.codec.MAX_DATAGRAM_BYTES` ceiling is enforced
on the *frame* -- the thing that actually hits the wire -- rather
than the bare message.

Control bodies may carry protocol values (node IDs, whole neighbor
tables) using the codec's tagged value encoding, so a harness can
reconstruct real :class:`~repro.routing.table.NeighborTable` objects
from remote snapshots and run the Definition 3.8 checker on them.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Optional, Tuple

from repro.ids.digits import NodeId
from repro.network.message import Message
from repro.routing.entry import NeighborState
from repro.routing.table import NeighborTable
from repro.runtime.codec import (
    MAX_DATAGRAM_BYTES,
    MalformedWireError,
    OversizedMessageError,
    decode_value,
    encode_value,
    message_from_obj,
    message_to_obj,
)

#: Frame kinds.
MSG, ACK, CTL, RSP = "m", "a", "c", "r"

_KINDS = frozenset((MSG, ACK, CTL, RSP))


def encode_frame(frame: Dict[str, Any]) -> bytes:
    """Serialize a frame dict to its UTF-8 datagram, enforcing the
    UDP payload ceiling."""
    data = json.dumps(
        frame, separators=(",", ":"), sort_keys=True
    ).encode("utf-8")
    if len(data) > MAX_DATAGRAM_BYTES:
        raise OversizedMessageError(
            f"frame kind {frame.get('k')!r} encodes to {len(data)} bytes "
            f"(> {MAX_DATAGRAM_BYTES})"
        )
    return data


def decode_frame(data: bytes) -> Dict[str, Any]:
    """Parse one datagram into its frame dict (kind-checked)."""
    try:
        frame = json.loads(data.decode("utf-8"))
    except (ValueError, UnicodeDecodeError) as exc:
        raise MalformedWireError(
            f"undecodable frame ({len(data)} bytes): {exc}"
        ) from exc
    if not isinstance(frame, dict) or frame.get("k") not in _KINDS:
        raise MalformedWireError(f"not a frame: {data[:80]!r}")
    return frame


# -- frame constructors -----------------------------------------------------


def msg_frame(seq: int, message: Message) -> Dict[str, Any]:
    """A protocol-message frame awaiting acknowledgment of ``seq``."""
    return {"k": MSG, "s": seq, "m": message_to_obj(message)}


def ack_frame(seq: int) -> Dict[str, Any]:
    """An acknowledgment of message sequence number ``seq``."""
    return {"k": ACK, "s": seq}


def ctl_frame(rid: int, op: str, body: Optional[Dict[str, Any]] = None
              ) -> Dict[str, Any]:
    """A control request ``op`` with request id ``rid``."""
    return {
        "k": CTL, "r": rid, "op": op,
        "b": body if body is not None else {},
    }


def rsp_frame(rid: int, body: Dict[str, Any]) -> Dict[str, Any]:
    """The response to the control request with id ``rid``."""
    return {"k": RSP, "r": rid, "b": body}


def frame_message(frame: Dict[str, Any]) -> Message:
    """The protocol message embedded in an ``m`` frame."""
    return message_from_obj(frame["m"])


# -- addresses --------------------------------------------------------------

#: A UDP endpoint as ``(host, port)``.
Address = Tuple[str, int]


def parse_hostport(text: str) -> Address:
    """``"host:port"`` -> ``(host, port)`` (host may be empty for
    "all interfaces"; defaults to 127.0.0.1)."""
    host, sep, port = text.rpartition(":")
    if not sep:
        raise ValueError(f"expected HOST:PORT, got {text!r}")
    try:
        port_num = int(port)
    except ValueError:
        raise ValueError(f"invalid port in {text!r}") from None
    return (host or "127.0.0.1", port_num)


def format_hostport(addr: Address) -> str:
    """``(host, port)`` -> ``"host:port"`` (inverse of
    :func:`parse_hostport`)."""
    return f"{addr[0]}:{addr[1]}"


# -- protocol values in control bodies --------------------------------------


def node_id_to_wire(node_id: NodeId) -> Any:
    """A node ID as a JSON-ready tagged value."""
    return encode_value(node_id)


def node_id_from_wire(obj: Any) -> NodeId:
    """Decode a tagged value, requiring it to be a node ID."""
    value = decode_value(obj)
    if not isinstance(value, NodeId):
        raise MalformedWireError(f"expected a node id, got {value!r}")
    return value


def table_to_wire(table: NeighborTable) -> Dict[str, Any]:
    """A neighbor table's filled entries as a JSON-ready object (the
    payload of the control protocol's ``table`` response)."""
    return {
        "owner": encode_value(table.owner),
        "entries": [
            [entry.level, entry.digit, encode_value(entry.node),
             entry.state.value]
            for entry in table.snapshot()
        ],
    }


def table_from_wire(obj: Dict[str, Any]) -> NeighborTable:
    """Rebuild a :class:`NeighborTable` from its wire form.  The
    result carries forward entries only (reverse-neighbor records stay
    node-local), which is everything the Definition 3.8 checker reads."""
    try:
        owner = node_id_from_wire(obj["owner"])
        table = NeighborTable(owner)
        for level, digit, node_obj, state in obj["entries"]:
            table.set_entry(
                level, digit, node_id_from_wire(node_obj),
                NeighborState(state),
            )
    except (KeyError, TypeError, ValueError) as exc:
        if isinstance(exc, MalformedWireError):
            raise
        raise MalformedWireError(f"bad table snapshot: {exc}") from exc
    return table


__all__ = [
    "ACK",
    "Address",
    "CTL",
    "MSG",
    "RSP",
    "ack_frame",
    "ctl_frame",
    "decode_frame",
    "encode_frame",
    "format_hostport",
    "frame_message",
    "msg_frame",
    "node_id_from_wire",
    "node_id_to_wire",
    "parse_hostport",
    "rsp_frame",
    "table_from_wire",
    "table_to_wire",
]
