"""Pre-optimization reference implementations of the hot paths.

Every function here reproduces, unchanged, the behaviour the
corresponding method had before the hot-path optimization pass; the
optimized methods must be *observationally identical* (same results,
same message counts, same final tables) -- only faster.

:func:`use_pre_pr_hot_path` temporarily swaps the naive versions back
in, which is how ``benchmarks/bench_core_speed.py`` measures the
pre-PR baseline inside the same process, and how the semantics tests
check that a fixed-seed simulation is unaffected by the pass.
"""

from __future__ import annotations

import contextlib
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.ids.digits import _DIGIT_CHARS, NodeId
from repro.network.transport import Transport, UnknownDestinationError
from repro.routing.entry import NeighborState
from repro.routing.table import (
    EntryConflictError,
    NeighborTable,
    TableEntry,
)
from repro.sim.scheduler import SimulationError, Simulator

Position = Tuple[int, int]


# ---------------------------------------------------------------------------
# NodeId (repro.ids.digits) -- pre-PR digit loops, no caches


def naive_csuf_len(a: NodeId, b: NodeId) -> int:
    """Reference ``|csuf(a, b)|``: plain digit loop, no fast paths."""
    n = 0
    for x, y in zip(a.digits, b.digits):
        if x != y:
            break
        n += 1
    return n


def naive_str(a: NodeId) -> str:
    """Reference printable form: rebuilt from digits on every call."""
    return "".join(_DIGIT_CHARS[dg] for dg in reversed(a.digits))


def naive_to_int(a: NodeId) -> int:
    """Reference numeric value: recomputed on every call."""
    value = 0
    for dg in reversed(a.digits):
        value = value * a.base + dg
    return value


def _naive_eq(self: NodeId, other: object):
    if not isinstance(other, NodeId):
        return NotImplemented
    return self.digits == other.digits and self.base == other.base


def _naive_ne(self: NodeId, other: object):
    eq = _naive_eq(self, other)
    if eq is NotImplemented:
        return eq
    return not eq


def _naive_lt(self: NodeId, other: NodeId) -> bool:
    return naive_to_int(self) < naive_to_int(other)


# ---------------------------------------------------------------------------
# NeighborTable (repro.routing.table) -- re-sorted, uncached snapshot
# rebuilt from scratch on every call (the pre-PR cost model: a dict of
# position tuples, sorted and boxed into entries per snapshot).


def _table_items(table) -> Dict[Position, Tuple[NodeId, "NeighborState"]]:
    """Filled entries as a position-keyed dict, whatever the backend."""
    entries = getattr(table, "_entries", None)
    if isinstance(entries, dict):  # DictNeighborTable's sparse storage
        return dict(entries)
    base = table.base
    return {
        divmod(idx, base): (
            table._cells[idx],
            NeighborState.T if table._states[idx] == 1 else NeighborState.S,
        )
        for idx in table._positions
    }


def _naive_entries(self) -> Iterator[TableEntry]:
    items = _table_items(self)
    for (level, digit) in sorted(items):
        node, state = items[(level, digit)]
        yield TableEntry(level, digit, node, state)


def _naive_snapshot(self) -> Tuple[TableEntry, ...]:
    return tuple(_naive_entries(self))


def _naive_snapshot_levels(self, low: int, high: int) -> Tuple[TableEntry, ...]:
    return tuple(
        entry for entry in _naive_entries(self) if low <= entry.level <= high
    )


# ---------------------------------------------------------------------------
# Transport (repro.network.transport) -- no pairwise latency memo


def _naive_send(self: Transport, dst, message) -> None:
    if dst not in self._nodes:
        raise UnknownDestinationError(str(dst))
    self.stats.on_send(message)
    delay = self.latency_model.latency(message.sender, dst)
    target = self._nodes[dst]
    if self._tracer is None:
        self.runtime.schedule(delay, target.receive, message)
    else:
        self._send_traced(dst, message, delay, target)


# ---------------------------------------------------------------------------
# Simulator (repro.sim.scheduler) -- attribute chains inside the loop


def _naive_run(self: Simulator, until=None, max_events=None) -> int:
    if self._running:
        raise SimulationError("run() is not reentrant")
    self._running = True
    fired = 0
    on_event_fired = self.on_event_fired
    try:
        while True:
            if max_events is not None and fired >= max_events:
                break
            next_time = self._queue.peek_time()
            if next_time is None:
                break
            if until is not None and next_time > until:
                break
            event = self._queue.pop()
            assert event is not None
            self._now = event.time
            event.fire()
            fired += 1
            self._events_fired += 1
            if on_event_fired is not None:
                on_event_fired(self._now, len(self._queue))
    finally:
        self._running = False
    if until is not None and self._now < until and not self._queue:
        self._now = until
    return fired


# ---------------------------------------------------------------------------
# ProtocolNode (repro.protocol.node) -- unhoisted Check_Ngh_Table


def _naive_check_ngh_table(self, snapshot) -> None:
    from repro.protocol.status import NodeStatus

    for entry in snapshot:
        u = entry.node
        if u == self.node_id:
            continue
        k = self._csuf(u)
        current = self.table.get(k, u.digit(k))
        if current is None:
            self._fill_entry(k, u.digit(k), u, entry.state)
        elif current != u:
            self.backups.offer(k, u.digit(k), u)
        if (
            self.status is NodeStatus.NOTIFYING
            and k >= self.noti_level
            and u not in self.q_notified
        ):
            self._send_join_noti(u, k)


def _naive_offer(self, level: int, digit: int, node) -> bool:
    if node == self.owner:
        return False
    if naive_csuf_len(node, self.owner) < level or node.digit(level) != digit:
        return False
    # Key layout follows the live store (flat index) so stores written
    # under the patch read back correctly after it exits.
    bucket = self._backups.setdefault(level * self._base + digit, [])
    if node in bucket or len(bucket) >= self.capacity:
        return False
    bucket.append(node)
    return True


def _naive_nodeid_csuf_len(self: NodeId, other: NodeId) -> int:
    return naive_csuf_len(self, other)


def _naive_nodeid_str(self: NodeId) -> str:
    return naive_str(self)


def _naive_nodeid_to_int(self: NodeId) -> int:
    return naive_to_int(self)


# ---------------------------------------------------------------------------
# Dict-backed NeighborTable: the pre-PR sparse representation, kept as a
# second live backend so property tests can drive whole protocol runs
# through both and assert byte-identical behaviour.


class DictNeighborTable(NeighborTable):
    """Sparse ``Dict[(level, digit)] -> (node, state)`` neighbor table.

    The storage layout the array-backed :class:`NeighborTable` replaced.
    Same public API and the same observable semantics (snapshot order,
    conflict rules, reverse-neighbor bookkeeping), so a fixed-seed run
    is bit-for-bit identical on either backend — which is exactly what
    ``tests/properties/test_table_backends.py`` asserts.  Protocol fast
    paths detect the array backend by exact type and fall back to the
    public API here, so the equivalence is exercised end to end.
    """

    __slots__ = ("_entries",)

    def __init__(self, owner: NodeId):
        # Deliberately skip NeighborTable.__init__: this backend has no
        # flat arrays, and leaving the parent slots unset makes any
        # accidental `_cells` access fail loudly.
        self.owner = owner
        self.base = owner.base
        self.num_levels = owner.num_digits
        self._entries: Dict[Position, Tuple[NodeId, NeighborState]] = {}
        self._reverse: Dict[Position, Set[NodeId]] = {}
        self._snapshot = None
        self._version = 0

    # -- basic access -------------------------------------------------

    def get(self, level: int, digit: int) -> Optional[NodeId]:
        """The neighbor at ``(level, digit)``, or None."""
        cell = self._entries.get((level, digit))
        return cell[0] if cell is not None else None

    def state(self, level: int, digit: int) -> Optional[NeighborState]:
        """The state at ``(level, digit)``, or None when empty."""
        cell = self._entries.get((level, digit))
        return cell[1] if cell is not None else None

    def is_empty(self, level: int, digit: int) -> bool:
        """True when ``(level, digit)`` has no entry."""
        return (level, digit) not in self._entries

    def set_entry(
        self, level: int, digit: int, node: NodeId, state: NeighborState
    ) -> None:
        """Validated entry write; refuses to overwrite a different node."""
        self._check_position(level, digit)
        self._check_suffix(level, digit, node)
        current = self._entries.get((level, digit))
        if current is not None and current[0] != node:
            raise EntryConflictError(
                f"({level},{digit}) of {self.owner} holds {current[0]}, "
                f"refusing to overwrite with {node}"
            )
        self._entries[(level, digit)] = (node, state)
        self._snapshot = None
        self._version += 1

    def fill_empty(
        self, level: int, digit: int, node: NodeId, state: NeighborState
    ) -> None:
        """Trusted write into a known-empty, known-valid entry."""
        self._entries[(level, digit)] = (node, state)
        self._snapshot = None
        self._version += 1

    def load_sorted(self, items) -> None:
        """Trusted bulk fill of an empty table (oracle setup path)."""
        if self._entries:
            raise RuntimeError("load_sorted requires an empty table")
        entries = self._entries
        for level, digit, node, state in items:
            entries[(level, digit)] = (node, state)
        self._snapshot = None
        self._version += 1

    def load_reverse(self, acc) -> None:
        """Wholesale reverse-set install; the oracle hands the sets
        keyed by flat index, this backend keys by position tuple."""
        base = self.base
        self._reverse = {
            (idx // base, idx % base): bucket
            for idx, bucket in acc.items()
        }

    def set_state(self, level: int, digit: int, state: NeighborState) -> None:
        """Flip the state of an existing entry."""
        cell = self._entries.get((level, digit))
        if cell is None:
            raise KeyError(f"entry ({level},{digit}) is empty")
        self._entries[(level, digit)] = (cell[0], state)
        self._snapshot = None
        self._version += 1

    def replace_entry(
        self, level: int, digit: int, node: NodeId, state: NeighborState
    ) -> Optional[NodeId]:
        """Overwrite ``(level, digit)``; returns the displaced node."""
        self._check_position(level, digit)
        self._check_suffix(level, digit, node)
        previous = self.get(level, digit)
        self._entries[(level, digit)] = (node, state)
        self._snapshot = None
        self._version += 1
        return previous

    def clear_entry(self, level: int, digit: int) -> Optional[NodeId]:
        """Empty ``(level, digit)``; returns the removed node."""
        self._check_position(level, digit)
        cell = self._entries.pop((level, digit), None)
        self._snapshot = None
        self._version += 1
        return cell[0] if cell is not None else None

    def positions_of(self, node: NodeId) -> List[Position]:
        """All positions currently holding ``node``."""
        return [
            position
            for position, (occupant, _) in self._entries.items()
            if occupant == node
        ]

    # -- reverse neighbors ---------------------------------------------

    def add_reverse(self, level: int, digit: int, node: NodeId) -> None:
        """Record ``node`` as a reverse neighbor at ``(level, digit)``."""
        self._check_position(level, digit)
        self._reverse.setdefault((level, digit), set()).add(node)

    def remove_reverse(self, level: int, digit: int, node: NodeId) -> None:
        """Drop ``node`` from the reverse set at ``(level, digit)``."""
        bucket = self._reverse.get((level, digit))
        if bucket is not None:
            bucket.discard(node)
            if not bucket:
                del self._reverse[(level, digit)]

    def remove_reverse_everywhere(self, node: NodeId) -> None:
        """Drop ``node`` from every reverse set."""
        for position in list(self._reverse):
            self.remove_reverse(position[0], position[1], node)

    def reverse_positions(self) -> List[Position]:
        """Positions with a non-empty reverse set, sorted."""
        return sorted(self._reverse)

    def reverse_neighbors(self, level: int, digit: int) -> Set[NodeId]:
        """Copy of the reverse set at ``(level, digit)``."""
        return set(self._reverse.get((level, digit), ()))

    # -- iteration / snapshots ------------------------------------------

    def entries_at_level(self, level: int) -> List[TableEntry]:
        """Filled entries of one level, in digit order."""
        out = []
        for digit in range(self.base):
            cell = self._entries.get((level, digit))
            if cell is not None:
                out.append(TableEntry(level, digit, cell[0], cell[1]))
        return out

    def filled_count(self) -> int:
        """Number of filled entries."""
        return len(self._entries)

    def distinct_neighbors(self) -> Set[NodeId]:
        """Set of distinct nodes appearing in the table."""
        return {node for node, _ in self._entries.values()}

    def snapshot(self) -> Tuple[TableEntry, ...]:
        """Cached tuple of entries in (level, digit) order."""
        cached = self._snapshot
        if cached is None:
            entries = self._entries
            cached = tuple(
                TableEntry(level, digit, *entries[(level, digit)])
                for (level, digit) in sorted(entries)
            )
            self._snapshot = cached
        return cached

    def __len__(self) -> int:
        return len(self._entries)


#: Modules that instantiate tables by the module-global name
#: ``NeighborTable`` (the simulator tier; the wire tier builds tables
#: via ``table_from_wire``, outside any hot path).
_TABLE_CREATION_MODULES = (
    "repro.protocol.node",
    "repro.protocol.network_init",
    "repro.routing.oracle",
    "repro.baselines.multicast_join",
)


@contextlib.contextmanager
def use_dict_tables():
    """Build every new table on the dict backend, temporarily.

    Rebinds the ``NeighborTable`` name inside the modules that create
    tables, so networks constructed inside the context run entirely on
    :class:`DictNeighborTable` while existing tables are untouched.
    Used by the backend-equivalence property and golden-trace tests.
    """
    import importlib

    modules = [importlib.import_module(name) for name in _TABLE_CREATION_MODULES]
    saved = [module.NeighborTable for module in modules]
    try:
        for module in modules:
            module.NeighborTable = DictNeighborTable
        yield
    finally:
        for module, original in zip(modules, saved):
            module.NeighborTable = original


@contextlib.contextmanager
def use_pre_pr_hot_path():
    """Swap the pre-optimization implementations back in, temporarily.

    Patches the hot-path methods of :class:`NodeId`,
    :class:`NeighborTable`, :class:`Transport`, :class:`Simulator`,
    ``ProtocolNode`` and ``BackupStore`` with the reference versions
    above, restoring the optimized ones on exit.  Also disables the
    transport latency memo and the hierarchical-latency pair memo for
    networks *created inside* the context (existing transports keep
    their memo dict, so only use this around whole-run workloads).
    """
    from repro.protocol.node import ProtocolNode
    from repro.routing.backups import BackupStore
    from repro.topology.latency import HierarchicalLatency

    def _naive_hier_latency(self, u: int, v: int) -> float:
        if u == v:
            return 0.0
        return self._compute_latency(u, v)

    patches = [
        (NodeId, "csuf_len", _naive_nodeid_csuf_len),
        (NodeId, "__str__", _naive_nodeid_str),
        (NodeId, "to_int", _naive_nodeid_to_int),
        (NodeId, "__eq__", _naive_eq),
        (NodeId, "__ne__", _naive_ne),
        (NodeId, "__lt__", _naive_lt),
        (NeighborTable, "entries", _naive_entries),
        (NeighborTable, "snapshot", _naive_snapshot),
        (NeighborTable, "snapshot_levels", _naive_snapshot_levels),
        (Transport, "send", _naive_send),
        (Simulator, "run", _naive_run),
        (ProtocolNode, "_check_ngh_table", _naive_check_ngh_table),
        (BackupStore, "offer", _naive_offer),
        (HierarchicalLatency, "latency", _naive_hier_latency),
    ]
    saved = [(cls, name, cls.__dict__[name]) for cls, name, _ in patches]
    try:
        for cls, name, impl in patches:
            setattr(cls, name, impl)
        yield
    finally:
        for cls, name, impl in saved:
            setattr(cls, name, impl)


__all__ = [
    "DictNeighborTable",
    "naive_csuf_len",
    "naive_str",
    "naive_to_int",
    "use_dict_tables",
    "use_pre_pr_hot_path",
]
