"""Pre-optimization reference implementations of the hot paths.

Every function here reproduces, unchanged, the behaviour the
corresponding method had before the hot-path optimization pass; the
optimized methods must be *observationally identical* (same results,
same message counts, same final tables) -- only faster.

:func:`use_pre_pr_hot_path` temporarily swaps the naive versions back
in, which is how ``benchmarks/bench_core_speed.py`` measures the
pre-PR baseline inside the same process, and how the semantics tests
check that a fixed-seed simulation is unaffected by the pass.
"""

from __future__ import annotations

import contextlib
from typing import Iterator, Tuple

from repro.ids.digits import _DIGIT_CHARS, NodeId
from repro.network.transport import Transport, UnknownDestinationError
from repro.routing.table import NeighborTable, TableEntry
from repro.sim.scheduler import SimulationError, Simulator


# ---------------------------------------------------------------------------
# NodeId (repro.ids.digits) -- pre-PR digit loops, no caches


def naive_csuf_len(a: NodeId, b: NodeId) -> int:
    """Reference ``|csuf(a, b)|``: plain digit loop, no fast paths."""
    n = 0
    for x, y in zip(a.digits, b.digits):
        if x != y:
            break
        n += 1
    return n


def naive_str(a: NodeId) -> str:
    """Reference printable form: rebuilt from digits on every call."""
    return "".join(_DIGIT_CHARS[dg] for dg in reversed(a.digits))


def naive_to_int(a: NodeId) -> int:
    """Reference numeric value: recomputed on every call."""
    value = 0
    for dg in reversed(a.digits):
        value = value * a.base + dg
    return value


def _naive_eq(self: NodeId, other: object):
    if not isinstance(other, NodeId):
        return NotImplemented
    return self.digits == other.digits and self.base == other.base


def _naive_ne(self: NodeId, other: object):
    eq = _naive_eq(self, other)
    if eq is NotImplemented:
        return eq
    return not eq


def _naive_lt(self: NodeId, other: NodeId) -> bool:
    return naive_to_int(self) < naive_to_int(other)


# ---------------------------------------------------------------------------
# NeighborTable (repro.routing.table) -- re-sorted snapshot every call


def _naive_entries(self: NeighborTable) -> Iterator[TableEntry]:
    for (level, digit) in sorted(self._entries):
        node, state = self._entries[(level, digit)]
        yield TableEntry(level, digit, node, state)


def _naive_snapshot(self: NeighborTable) -> Tuple[TableEntry, ...]:
    return tuple(_naive_entries(self))


def _naive_snapshot_levels(
    self: NeighborTable, low: int, high: int
) -> Tuple[TableEntry, ...]:
    return tuple(
        entry for entry in _naive_entries(self) if low <= entry.level <= high
    )


# ---------------------------------------------------------------------------
# Transport (repro.network.transport) -- no pairwise latency memo


def _naive_send(self: Transport, dst, message) -> None:
    if dst not in self._nodes:
        raise UnknownDestinationError(str(dst))
    self.stats.on_send(message)
    delay = self.latency_model.latency(message.sender, dst)
    target = self._nodes[dst]
    if self._tracer is None:
        self.runtime.schedule(delay, target.receive, message)
    else:
        self._send_traced(dst, message, delay, target)


# ---------------------------------------------------------------------------
# Simulator (repro.sim.scheduler) -- attribute chains inside the loop


def _naive_run(self: Simulator, until=None, max_events=None) -> int:
    if self._running:
        raise SimulationError("run() is not reentrant")
    self._running = True
    fired = 0
    on_event_fired = self.on_event_fired
    try:
        while True:
            if max_events is not None and fired >= max_events:
                break
            next_time = self._queue.peek_time()
            if next_time is None:
                break
            if until is not None and next_time > until:
                break
            event = self._queue.pop()
            assert event is not None
            self._now = event.time
            event.fire()
            fired += 1
            self._events_fired += 1
            if on_event_fired is not None:
                on_event_fired(self._now, len(self._queue))
    finally:
        self._running = False
    if until is not None and self._now < until and not self._queue:
        self._now = until
    return fired


# ---------------------------------------------------------------------------
# ProtocolNode (repro.protocol.node) -- unhoisted Check_Ngh_Table


def _naive_check_ngh_table(self, snapshot) -> None:
    from repro.protocol.status import NodeStatus

    for entry in snapshot:
        u = entry.node
        if u == self.node_id:
            continue
        k = self._csuf(u)
        current = self.table.get(k, u.digit(k))
        if current is None:
            self._fill_entry(k, u.digit(k), u, entry.state)
        elif current != u:
            self.backups.offer(k, u.digit(k), u)
        if (
            self.status is NodeStatus.NOTIFYING
            and k >= self.noti_level
            and u not in self.q_notified
        ):
            self._send_join_noti(u, k)


def _naive_offer(self, level: int, digit: int, node) -> bool:
    if node == self.owner:
        return False
    if naive_csuf_len(node, self.owner) < level or node.digit(level) != digit:
        return False
    bucket = self._backups.setdefault((level, digit), [])
    if node in bucket or len(bucket) >= self.capacity:
        return False
    bucket.append(node)
    return True


def _naive_nodeid_csuf_len(self: NodeId, other: NodeId) -> int:
    return naive_csuf_len(self, other)


def _naive_nodeid_str(self: NodeId) -> str:
    return naive_str(self)


def _naive_nodeid_to_int(self: NodeId) -> int:
    return naive_to_int(self)


@contextlib.contextmanager
def use_pre_pr_hot_path():
    """Swap the pre-optimization implementations back in, temporarily.

    Patches the hot-path methods of :class:`NodeId`,
    :class:`NeighborTable`, :class:`Transport`, :class:`Simulator`,
    ``ProtocolNode`` and ``BackupStore`` with the reference versions
    above, restoring the optimized ones on exit.  Also disables the
    transport latency memo and the hierarchical-latency pair memo for
    networks *created inside* the context (existing transports keep
    their memo dict, so only use this around whole-run workloads).
    """
    from repro.protocol.node import ProtocolNode
    from repro.routing.backups import BackupStore
    from repro.topology.latency import HierarchicalLatency

    def _naive_hier_latency(self, u: int, v: int) -> float:
        if u == v:
            return 0.0
        return self._compute_latency(u, v)

    patches = [
        (NodeId, "csuf_len", _naive_nodeid_csuf_len),
        (NodeId, "__str__", _naive_nodeid_str),
        (NodeId, "to_int", _naive_nodeid_to_int),
        (NodeId, "__eq__", _naive_eq),
        (NodeId, "__ne__", _naive_ne),
        (NodeId, "__lt__", _naive_lt),
        (NeighborTable, "entries", _naive_entries),
        (NeighborTable, "snapshot", _naive_snapshot),
        (NeighborTable, "snapshot_levels", _naive_snapshot_levels),
        (Transport, "send", _naive_send),
        (Simulator, "run", _naive_run),
        (ProtocolNode, "_check_ngh_table", _naive_check_ngh_table),
        (BackupStore, "offer", _naive_offer),
        (HierarchicalLatency, "latency", _naive_hier_latency),
    ]
    saved = [(cls, name, cls.__dict__[name]) for cls, name, _ in patches]
    try:
        for cls, name, impl in patches:
            setattr(cls, name, impl)
        yield
    finally:
        for cls, name, impl in saved:
            setattr(cls, name, impl)


__all__ = [
    "naive_csuf_len",
    "naive_str",
    "naive_to_int",
    "use_pre_pr_hot_path",
]
