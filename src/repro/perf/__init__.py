"""Performance tooling: pre-optimization reference implementations.

:mod:`repro.perf.baseline` keeps byte-for-byte copies of the hot-path
code as it stood *before* the single-core optimization pass (cached
``NodeId`` forms, neighbor-table snapshot caching, transport latency
memoization, scheduler hoisting).  They serve two purposes:

* equivalence tests assert the optimized fast paths compute exactly
  what the naive code computed;
* ``benchmarks/bench_core_speed.py`` measures the optimized code
  against the pre-optimization baseline *in the same run*, so the
  recorded speedup is self-contained and reproducible.
"""

from repro.perf.baseline import (
    naive_csuf_len,
    naive_str,
    naive_to_int,
    use_pre_pr_hot_path,
)

__all__ = [
    "naive_csuf_len",
    "naive_str",
    "naive_to_int",
    "use_pre_pr_hot_path",
]
