"""Combinatorial helpers for the cost analysis.

The Theorem 4 probabilities are ratios of binomial coefficients whose
upper indices reach ``16**40 - 1``.  Computing ``lgamma`` differences
of such magnitudes loses all precision to cancellation, so the ratio
``C(a, k) / C(n, k)`` is evaluated as ``exp(sum_t log((a-t)/(n-t)))``
-- a length-``k`` sum that is exact in structure and accurate in
float64 for both the huge-``a`` and small-``a`` regimes.
"""

from __future__ import annotations

import math
from math import comb as comb_exact  # re-export: exact integer binomial

try:  # numpy accelerates the length-k log sums; fall back gracefully.
    import numpy as _np
except ImportError:  # pragma: no cover - numpy is installed in CI
    _np = None


def log_comb(n: int, k: int) -> float:
    """``log C(n, k)`` via lgamma.

    Suitable when ``n`` is at most a few orders of magnitude above
    ``k``; do **not** difference two of these for astronomically large
    ``n`` (use :func:`log_comb_ratio` instead).
    """
    if k < 0 or k > n:
        return float("-inf")
    return (
        math.lgamma(n + 1) - math.lgamma(k + 1) - math.lgamma(n - k + 1)
    )


def log_comb_ratio(a: int, n: int, k: int) -> float:
    """``log( C(a, k) / C(n, k) )`` for ``a <= n``, stable at any scale.

    Equals ``sum_{t=0}^{k-1} log((a - t) / (n - t))``.  Returns ``-inf``
    when ``C(a, k)`` is zero (``k > a``).
    """
    if not 0 <= a <= n:
        raise ValueError("need 0 <= a <= n")
    if k < 0 or k > n:
        raise ValueError("need 0 <= k <= n")
    if k > a:
        return float("-inf")
    if k == 0 or a == n:
        return 0.0
    if _np is not None and k >= 64:
        t = _np.arange(k, dtype=_np.float64)
        return float(
            _np.sum(_np.log(float(a) - t) - _np.log(float(n) - t))
        )
    total = 0.0
    for t in range(k):
        total += math.log((a - t) / (n - t))
    return total


def comb_ratio(a: int, n: int, k: int) -> float:
    """``C(a, k) / C(n, k)`` as a float in [0, 1]."""
    log_ratio = log_comb_ratio(a, n, k)
    if log_ratio == float("-inf"):
        return 0.0
    return math.exp(log_ratio)
