"""Theorems 3, 4 and 5: communication cost of a join.

``P_i(n)`` is the probability that a joining node's *notification
level* is ``i``: among ``n`` uniformly random distinct IDs (drawn from
the ``b**d - 1`` IDs other than the joiner's), some node shares the
rightmost ``i`` digits with the joiner but none shares ``i + 1``.

The paper states ``P_i(n)`` as a sum over the number ``k`` of nodes
matching exactly ``i`` digits (Theorem 4); by Vandermonde's identity
that sum telescopes to

    P_i(n) = [ C(b^d - b^{d-i-1}, n) - C(b^d - b^{d-i}, n) ] / C(b^d - 1, n)

i.e. ``Q(i+1) - Q(i)`` with ``Q(i) = P(no node shares >= i digits)``.
Both forms are implemented; tests verify they agree exactly on small
parameters and that the closed form reproduces the paper's printed
bounds (8.001 and 6.986) on the Figure 15(b) configurations.
"""

from __future__ import annotations

from typing import List

from repro.analysis.combinatorics import comb_exact, comb_ratio


def theorem3_bound(num_digits: int) -> int:
    """Theorem 3: at most ``d + 1`` CpRstMsg + JoinWaitMsg per join."""
    return num_digits + 1


def _check_params(n: int, base: int, num_digits: int) -> None:
    if n < 1:
        raise ValueError("n must be >= 1 (V is non-empty)")
    if base < 2 or num_digits < 1:
        raise ValueError("need base >= 2 and num_digits >= 1")
    if n > base ** num_digits - 1:
        raise ValueError("n exceeds the number of available IDs")


def _no_match_probability(n: int, base: int, num_digits: int, i: int) -> float:
    """``Q(i)``: probability that none of ``n`` random distinct IDs
    shares the rightmost ``i`` digits with the joiner."""
    if i == 0:
        return 0.0  # every ID shares the empty suffix
    total = base ** num_digits - 1
    non_matching = base ** num_digits - base ** (num_digits - i)
    return comb_ratio(non_matching, total, n)


def level_distribution(n: int, base: int, num_digits: int) -> List[float]:
    """``[P_0(n), ..., P_{d-1}(n)]`` via the Vandermonde closed form."""
    _check_params(n, base, num_digits)
    q = [
        _no_match_probability(n, base, num_digits, i)
        for i in range(num_digits + 1)
    ]
    # Q(d) involves all b^d - 1 foreign IDs, none of which shares all d
    # digits, so it is exactly 1.
    assert abs(q[num_digits] - 1.0) < 1e-12
    return [q[i + 1] - q[i] for i in range(num_digits)]


def level_distribution_naive(
    n: int, base: int, num_digits: int
) -> List[float]:
    """The paper's literal Theorem 4 formula, in exact integer
    arithmetic.  Only feasible for small ``base ** num_digits``."""
    _check_params(n, base, num_digits)
    total_ids = base ** num_digits - 1
    denominator = comb_exact(total_ids, n)
    out: List[float] = []
    for i in range(num_digits - 1):
        matching_exactly = (base - 1) * base ** (num_digits - 1 - i)
        fewer_matching = base ** num_digits - base ** (num_digits - i)
        numerator = 0
        for k in range(1, min(n, matching_exactly) + 1):
            numerator += comb_exact(matching_exactly, k) * comb_exact(
                fewer_matching, n - k
            )
        out.append(numerator / denominator)
    out.append(1.0 - sum(out))
    return out


def expected_join_noti(n: int, base: int, num_digits: int) -> float:
    """Theorem 4: ``E(J)`` for a single node joining ``|V| = n``.

    ``E(J) = sum_i (n / b^i) P_i(n) - 1``.
    """
    distribution = level_distribution(n, base, num_digits)
    return (
        sum(
            (n / base ** i) * p_i
            for i, p_i in enumerate(distribution)
        )
        - 1.0
    )


def expected_join_noti_upper_bound(
    n: int, m: int, base: int, num_digits: int
) -> float:
    """Theorem 5: upper bound of ``E(J)`` when ``m`` nodes join
    ``|V| = n`` concurrently.

    ``sum_i ((n + m) / b^i) P_i(n)``.
    """
    if m < 1:
        raise ValueError("m must be >= 1")
    distribution = level_distribution(n, base, num_digits)
    return sum(
        ((n + m) / base ** i) * p_i
        for i, p_i in enumerate(distribution)
    )
