"""Analytic communication-cost model (Section 5.2).

* Theorem 3: a joining node sends at most ``d + 1`` CpRstMsg +
  JoinWaitMsg.
* Theorem 4: the expected number of JoinNotiMsg sent by a single
  joiner, via the notification-level distribution ``P_i(n)``.
* Theorem 5: an upper bound on that expectation under ``m`` concurrent
  joins.

Two implementations of ``P_i(n)`` are provided: the paper's literal
sum (exact integer arithmetic; feasible only for small ``b**d``) and a
numerically stable closed form obtained by Vandermonde's identity
(valid for the paper's ``b=16, d=40`` regime); tests cross-validate
them.
"""

from repro.analysis.combinatorics import (
    comb_exact,
    log_comb,
    log_comb_ratio,
)
from repro.analysis.expected_cost import (
    expected_join_noti,
    expected_join_noti_upper_bound,
    level_distribution,
    level_distribution_naive,
    theorem3_bound,
)

__all__ = [
    "comb_exact",
    "expected_join_noti",
    "expected_join_noti_upper_bound",
    "level_distribution",
    "level_distribution_naive",
    "log_comb",
    "log_comb_ratio",
    "theorem3_bound",
]
