"""Figure 15(b): simulated JoinNotiMsg distribution per joiner.

Scaled-down reproduction of the paper's concurrent-join simulation on
a transit-stub topology (same code path as the 8320-router full run;
see examples/figure15b_full.py for paper-scale parameters).  Records
the CDF spot values, the mean, and the Theorem 5 bound.
"""

from repro.experiments.fig15b import Fig15bConfig, run_fig15b
from repro.experiments.workloads import SMALL_TOPOLOGY


def run_scaled(num_digits):
    return run_fig15b(
        Fig15bConfig(
            n=400,
            m=130,
            base=16,
            num_digits=num_digits,
            seed=42,
            use_topology=True,
            topology_params=SMALL_TOPOLOGY,
        )
    )


def _record(benchmark, result):
    benchmark.extra_info["mean_join_noti"] = round(result.mean_join_noti, 3)
    benchmark.extra_info["theorem5_bound"] = round(result.theorem5_bound, 3)
    benchmark.extra_info["cdf_at_5"] = round(result.cdf.at(5), 3)
    benchmark.extra_info["cdf_at_20"] = round(result.cdf.at(20), 3)
    benchmark.extra_info["max"] = result.cdf.max
    assert result.consistent
    assert result.all_in_system
    assert result.theorem3_violations == 0
    assert result.mean_join_noti < result.theorem5_bound


def test_fig15b_d8(benchmark):
    result = benchmark.pedantic(run_scaled, args=(8,), rounds=1, iterations=1)
    _record(benchmark, result)


def test_fig15b_d40(benchmark):
    result = benchmark.pedantic(run_scaled, args=(40,), rounds=1, iterations=1)
    _record(benchmark, result)
