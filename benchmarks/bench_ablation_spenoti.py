"""Ablation: how often does the SpeNotiMsg repair path fire?

Footnote 8 of the paper: "In simulations, we observed that SpeNotiMsg
is rarely sent."  This bench measures the rate across workloads of
increasing suffix-collision pressure (base 16 down to base 2).
"""

import random

from repro.ids.idspace import IdSpace
from repro.protocol.join import JoinProtocolNetwork
from repro.topology.attachment import UniformLatencyModel

from benchmarks.conftest import fresh_network, run_concurrent, sampled_workload

WORKLOADS = {
    "b16_d8": dict(base=16, num_digits=8, n=300, m=100),
    "b4_d6": dict(base=4, num_digits=6, n=150, m=80),
    "b2_d8": dict(base=2, num_digits=8, n=40, m=60),
}


def run_collision_pinned(seed=0):
    """A b=2 workload (pinned seed) known to exercise SpeNotiMsg."""
    space = IdSpace(2, 6)
    ids = space.random_unique_ids(50, random.Random(seed))
    net = JoinProtocolNetwork.from_oracle(
        space,
        ids[:10],
        latency_model=UniformLatencyModel(random.Random(seed + 5000)),
        seed=seed,
    )
    for joiner in ids[10:]:
        net.start_join(joiner, at=0.0)
    net.run()
    assert net.check_consistency().consistent
    return net.stats.count("SpeNotiMsg"), net.stats.count("JoinNotiMsg")


def run_all():
    results = {}
    for label, params in WORKLOADS.items():
        space, initial, joiners = sampled_workload(seed=5, **params)
        net = fresh_network(space, initial, seed=5)
        run_concurrent(net, joiners)
        assert net.check_consistency().consistent
        results[label] = (
            net.stats.count("SpeNotiMsg"),
            net.stats.count("JoinNotiMsg"),
        )
    results["b2_d6_pinned"] = run_collision_pinned()
    return results


def test_spenoti_rarity(benchmark):
    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    for label, (spe, noti) in results.items():
        benchmark.extra_info[f"{label}_SpeNotiMsg"] = spe
        benchmark.extra_info[f"{label}_JoinNotiMsg"] = noti
        # "Rarely sent": a small fraction of JoinNotiMsg traffic even
        # under maximal collision pressure.
        assert spe <= max(3, noti // 10), label
    # The easy regime should see (almost) none at all...
    assert results["b16_d8"][0] <= 2
    # ...and the pinned collision-heavy run does exercise the path.
    assert results["b2_d6_pinned"][0] > 0
