"""Figure 15(a): theoretical upper bound of E(J).

Regenerates the paper's four curves (m in {500, 1000}, d in {8, 40},
b=16, n = 10k..100k) and records spot values; benchmarks the cost of
evaluating the Theorem 5 closed form across the full grid.
"""

import pytest

from repro.analysis.expected_cost import expected_join_noti_upper_bound
from repro.experiments.fig15a import (
    FIG15A_CONFIGS,
    FIG15A_N_VALUES,
    figure15a_series,
)


def all_curves():
    return {
        config.label: figure15a_series(config)
        for config in FIG15A_CONFIGS
    }


def test_fig15a_curves(benchmark):
    curves = benchmark(all_curves)
    assert len(curves) == 4
    for label, series in curves.items():
        assert len(series) == len(FIG15A_N_VALUES)
        # The paper's y-axis range.
        assert all(3.0 < bound < 9.0 for _, bound in series)
    # Spot-check the paper's printed Theorem 5 values.
    benchmark.extra_info["bound_n3096_m1000_d8"] = round(
        expected_join_noti_upper_bound(3096, 1000, 16, 8), 3
    )
    benchmark.extra_info["bound_n7192_m1000_d8"] = round(
        expected_join_noti_upper_bound(7192, 1000, 16, 8), 3
    )
    assert benchmark.extra_info["bound_n3096_m1000_d8"] == pytest.approx(
        8.001
    )
    assert benchmark.extra_info["bound_n7192_m1000_d8"] == pytest.approx(
        6.986
    )
    for label, series in curves.items():
        benchmark.extra_info[f"{label} @ n=100000"] = round(series[-1][1], 3)
