"""Table optimization: route stretch before/after (property P2).

On the transit-stub topology, the join protocol's consistency-only
tables route correctly but ignore proximity; the optimization protocol
(the paper's problem 3) switches each entry to the nearest member of
its suffix class.  Records mean/max stretch before and after.
"""

from repro.experiments.workloads import SMALL_TOPOLOGY, make_workload
from repro.optimize import measure_stretch, optimize_tables


def run_optimization():
    workload = make_workload(
        base=16,
        num_digits=8,
        n=200,
        m=1,
        seed=31,
        use_topology=True,
        topology_params=SMALL_TOPOLOGY,
    )
    workload.start_all_joins()
    workload.run()
    net = workload.network
    before = measure_stretch(net, sample_pairs=200)
    report = optimize_tables(net)
    after = measure_stretch(net, sample_pairs=200)
    assert net.check_consistency().consistent
    return before, report, after


def test_optimization_stretch(benchmark):
    before, report, after = benchmark.pedantic(
        run_optimization, rounds=1, iterations=1
    )
    benchmark.extra_info["stretch_before"] = round(before.mean_stretch, 2)
    benchmark.extra_info["stretch_after"] = round(after.mean_stretch, 2)
    benchmark.extra_info["max_stretch_before"] = round(before.max_stretch, 2)
    benchmark.extra_info["max_stretch_after"] = round(after.max_stretch, 2)
    benchmark.extra_info["switches"] = report.total_switches
    benchmark.extra_info["rounds"] = report.rounds
    assert after.mean_stretch < before.mean_stretch
    assert report.converged
