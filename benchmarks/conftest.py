"""Shared benchmark helpers.

Each benchmark regenerates one of the paper's tables/figures (or an
ablation called out in DESIGN.md) and attaches the reproduced numbers
to the benchmark record via ``extra_info`` so that
``pytest benchmarks/ --benchmark-only`` doubles as the experiment
driver.  Scaled-down parameters keep the suite fast; the
``examples/figure15b_full.py`` script runs paper-scale settings.
"""

from __future__ import annotations

import random
from typing import List, Tuple

from repro.ids.digits import NodeId
from repro.ids.idspace import IdSpace
from repro.protocol.join import JoinProtocolNetwork
from repro.protocol.sizing import SizingPolicy
from repro.topology.attachment import UniformLatencyModel


def sampled_workload(
    base: int,
    num_digits: int,
    n: int,
    m: int,
    seed: int = 0,
) -> Tuple[IdSpace, List[NodeId], List[NodeId]]:
    space = IdSpace(base, num_digits)
    ids = space.random_unique_ids(n + m, random.Random(seed))
    return space, ids[:n], ids[n:]


def fresh_network(
    space: IdSpace,
    initial: List[NodeId],
    seed: int = 0,
    sizing: SizingPolicy = SizingPolicy.FULL,
) -> JoinProtocolNetwork:
    return JoinProtocolNetwork.from_oracle(
        space,
        initial,
        latency_model=UniformLatencyModel(
            random.Random(f"bench-lat-{seed}"), 1.0, 100.0
        ),
        sizing=sizing,
        seed=seed,
    )


def run_concurrent(network, joiners) -> None:
    for joiner in joiners:
        network.start_join(joiner, at=0.0)
    network.run()
    assert network.all_in_system()
