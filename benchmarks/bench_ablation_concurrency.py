"""Ablation: concurrent joins vs a serializing gate.

The value of Theorem 1's concurrency support, in virtual time: the
same m joins finish far sooner when started simultaneously than when
serialized one-at-a-time (the trivially safe alternative).
"""

from repro.baselines.sequential_gate import join_sequentially

from benchmarks.conftest import fresh_network, run_concurrent, sampled_workload

PARAMS = dict(base=16, num_digits=8, n=200, m=60)


def run_concurrent_workload():
    space, initial, joiners = sampled_workload(seed=17, **PARAMS)
    net = fresh_network(space, initial, seed=17)
    run_concurrent(net, joiners)
    assert net.check_consistency().consistent
    return net.simulator.now


def run_serialized_workload():
    space, initial, joiners = sampled_workload(seed=17, **PARAMS)
    net = fresh_network(space, initial, seed=17)
    finished_at = join_sequentially(net, joiners, gap=0.0)
    assert net.check_consistency().consistent
    return finished_at


def run_both():
    return {
        "concurrent": run_concurrent_workload(),
        "serialized": run_serialized_workload(),
    }


def test_concurrency_speedup(benchmark):
    times = benchmark.pedantic(run_both, rounds=1, iterations=1)
    speedup = times["serialized"] / times["concurrent"]
    benchmark.extra_info["virtual_time_concurrent"] = round(
        times["concurrent"], 1
    )
    benchmark.extra_info["virtual_time_serialized"] = round(
        times["serialized"], 1
    )
    benchmark.extra_info["speedup"] = round(speedup, 1)
    assert speedup > 5.0
