"""Figure 15(b) across seeds: statistical stability of the result.

A single simulation is one sample; this bench repeats the scaled
configuration over five seeds and reports mean +/- stddev of the mean
JoinNotiMsg count, checking every run stays under the Theorem 5 bound
and consistent.

The per-seed runs go through the execution engine of
:mod:`repro.exec`; set ``REPRO_BENCH_JOBS`` to fan them over that many
worker processes, or ``REPRO_BENCH_BACKEND`` (plus
``REPRO_BENCH_WORKERS=host:port,...`` for ``remote``) to pick a
backend explicitly (results are identical for any choice).
"""

import os

from repro.experiments.fig15b import Fig15bConfig
from repro.experiments.sweep import sweep_fig15b
from repro.experiments.workloads import SMALL_TOPOLOGY

CONFIG = Fig15bConfig(
    n=300,
    m=100,
    base=16,
    num_digits=8,
    use_topology=True,
    topology_params=SMALL_TOPOLOGY,
)

SEEDS = range(5)


def bench_jobs() -> int:
    """Worker-process count for benches (``REPRO_BENCH_JOBS``, default 1)."""
    return int(os.environ.get("REPRO_BENCH_JOBS", "1"))


def bench_backend():
    """Explicit engine backend for benches (``REPRO_BENCH_BACKEND``,
    ``REPRO_BENCH_WORKERS``), or None for the jobs contract."""
    spec = os.environ.get("REPRO_BENCH_BACKEND")
    workers = os.environ.get("REPRO_BENCH_WORKERS")
    if not spec and not workers:
        return None
    from repro.exec import create_backend

    worker_list = (
        [w.strip() for w in workers.split(",") if w.strip()]
        if workers else None
    )
    return create_backend(
        spec or "remote", jobs=bench_jobs(), workers=worker_list
    )


def run_sweep():
    backend = bench_backend()
    try:
        return sweep_fig15b(
            CONFIG, seeds=SEEDS, jobs=bench_jobs(), backend=backend
        )
    finally:
        if backend is not None:
            backend.close()


def test_fig15b_seed_sweep(benchmark):
    sweep = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    stats = sweep.mean_join_noti
    benchmark.extra_info["jobs"] = bench_jobs()
    benchmark.extra_info["mean_of_means"] = round(stats.mean, 3)
    benchmark.extra_info["stddev"] = round(stats.stddev, 3)
    benchmark.extra_info["envelope"] = (
        f"[{stats.minimum:.3f}, {stats.maximum:.3f}]"
    )
    benchmark.extra_info["theorem5_bound"] = round(
        sweep.theorem5_bound, 3
    )
    assert sweep.all_consistent
    assert sweep.bound_never_exceeded
    # The seed-to-seed spread is modest relative to the bound gap.
    assert stats.maximum < sweep.theorem5_bound
