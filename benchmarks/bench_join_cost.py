"""Communication cost breakdown of the join protocol (Section 5.2).

Regenerates the per-message-type accounting behind the paper's cost
analysis: big messages (table-carrying) vs small messages, per join.
"""

from benchmarks.conftest import fresh_network, run_concurrent, sampled_workload

BIG = ("CpRstMsg", "JoinWaitMsg", "JoinNotiMsg")
SMALL = (
    "InSysNotiMsg",
    "SpeNotiMsg",
    "SpeNotiRlyMsg",
    "RvNghNotiMsg",
    "RvNghNotiRlyMsg",
)


def run_workload():
    space, initial, joiners = sampled_workload(16, 8, 400, 120, seed=21)
    net = fresh_network(space, initial, seed=21)
    run_concurrent(net, joiners)
    return net, len(joiners)


def test_join_cost_breakdown(benchmark):
    net, m = benchmark.pedantic(run_workload, rounds=1, iterations=1)
    assert net.check_consistency().consistent
    for name in BIG + SMALL:
        benchmark.extra_info[f"{name}_per_join"] = round(
            net.stats.count(name) / m, 3
        )
    big_total = sum(net.stats.count(name) for name in BIG)
    benchmark.extra_info["big_messages_per_join"] = round(big_total / m, 3)
    benchmark.extra_info["total_bytes_per_join"] = round(
        net.stats.total_bytes / m
    )
    # Each big message has exactly one reply (Section 5.2).
    assert net.stats.count("CpRstMsg") == net.stats.count("CpRlyMsg")
    assert net.stats.count("JoinWaitMsg") == net.stats.count("JoinWaitRlyMsg")
    assert net.stats.count("JoinNotiMsg") == net.stats.count("JoinNotiRlyMsg")
