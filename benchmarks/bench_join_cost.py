"""Communication cost breakdown of the join protocol (Section 5.2).

Regenerates the per-message-type accounting behind the paper's cost
analysis: big messages (table-carrying) vs small messages, per join.

The seed loop is routed through the execution engine of
:mod:`repro.exec` (``run_join_tasks``); set ``REPRO_BENCH_JOBS`` to
fan the seeds over worker processes, or ``REPRO_BENCH_BACKEND`` (plus
``REPRO_BENCH_WORKERS=host:port,...`` for ``remote``) to pick a
backend explicitly.
"""

import os

from repro.experiments.parallel import (
    JoinTaskConfig,
    run_join_tasks,
    seeded_configs,
)

BIG = ("CpRstMsg", "JoinWaitMsg", "JoinNotiMsg")
SMALL = (
    "InSysNotiMsg",
    "SpeNotiMsg",
    "SpeNotiRlyMsg",
    "RvNghNotiMsg",
    "RvNghNotiRlyMsg",
)

CONFIG = JoinTaskConfig(base=16, num_digits=8, n=400, m=120, seed=21)
SEEDS = (21, 22, 23)


def bench_jobs() -> int:
    """Worker-process count for benches (``REPRO_BENCH_JOBS``, default 1)."""
    return int(os.environ.get("REPRO_BENCH_JOBS", "1"))


def bench_backend():
    """Explicit engine backend for benches (``REPRO_BENCH_BACKEND``,
    ``REPRO_BENCH_WORKERS``), or None for the jobs contract."""
    spec = os.environ.get("REPRO_BENCH_BACKEND")
    workers = os.environ.get("REPRO_BENCH_WORKERS")
    if not spec and not workers:
        return None
    from repro.exec import create_backend

    worker_list = (
        [w.strip() for w in workers.split(",") if w.strip()]
        if workers else None
    )
    return create_backend(
        spec or "remote", jobs=bench_jobs(), workers=worker_list
    )


def run_workloads():
    backend = bench_backend()
    try:
        return run_join_tasks(
            seeded_configs(CONFIG, SEEDS), jobs=bench_jobs(),
            backend=backend,
        )
    finally:
        if backend is not None:
            backend.close()


def test_join_cost_breakdown(benchmark):
    results = benchmark.pedantic(run_workloads, rounds=1, iterations=1)
    m = CONFIG.m
    benchmark.extra_info["jobs"] = bench_jobs()
    benchmark.extra_info["seeds"] = list(SEEDS)
    per_seed_counts = [r.counts_dict() for r in results]
    for result in results:
        assert result.consistent
        assert result.all_in_system
    for name in BIG + SMALL:
        mean = sum(c.get(name, 0) for c in per_seed_counts) / len(results)
        benchmark.extra_info[f"{name}_per_join"] = round(mean / m, 3)
    big_total = sum(
        c.get(name, 0) for c in per_seed_counts for name in BIG
    )
    benchmark.extra_info["big_messages_per_join"] = round(
        big_total / (m * len(results)), 3
    )
    benchmark.extra_info["total_bytes_per_join"] = round(
        sum(r.total_bytes for r in results) / (m * len(results))
    )
    # Each big message has exactly one reply (Section 5.2).
    for counts in per_seed_counts:
        assert counts.get("CpRstMsg") == counts.get("CpRlyMsg")
        assert counts.get("JoinWaitMsg") == counts.get("JoinWaitRlyMsg")
        assert counts.get("JoinNotiMsg") == counts.get("JoinNotiRlyMsg")
