"""Joining-period lengths (Definition 3.1) under concurrent load.

Not a paper figure, but the natural liveness companion to Theorem 2:
how long does a node stay a T-node?  Measured across a three-seed
sweep on the transit-stub topology, in units of the topology's
latencies (milliseconds).
"""

from repro.experiments.fig15b import Fig15bConfig
from repro.experiments.sweep import joining_period_stats
from repro.experiments.workloads import SMALL_TOPOLOGY, make_workload


def run_sweep():
    stats = []
    for seed in (0, 1, 2):
        workload = make_workload(
            base=16,
            num_digits=8,
            n=300,
            m=100,
            seed=seed,
            use_topology=True,
            topology_params=SMALL_TOPOLOGY,
        )
        workload.start_all_joins()
        workload.run()
        assert workload.network.all_in_system()
        stats.append(joining_period_stats(workload.network))
    return stats


def test_joining_periods(benchmark):
    stats = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    means = [s.mean for s in stats]
    maxes = [s.maximum for s in stats]
    benchmark.extra_info["mean_period_ms"] = round(
        sum(means) / len(means), 1
    )
    benchmark.extra_info["max_period_ms"] = round(max(maxes), 1)
    # Liveness sanity: joining periods are bounded by a small number of
    # round trips, not by network size.
    assert max(maxes) < 10_000
