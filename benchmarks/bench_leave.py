"""Leave-protocol cost (extension).

Measures messages per leave and verifies the network shrinks
consistently -- the leave-side counterpart of the paper's join-cost
analysis (Section 5.2).
"""

import random

from benchmarks.conftest import fresh_network, sampled_workload
from repro.protocol.leave import leave_sequentially

PARAMS = dict(base=16, num_digits=8, n=300, m=1)


def run_leaves():
    space, initial, _ = sampled_workload(seed=13, **PARAMS)
    net = fresh_network(space, initial, seed=13)
    rng = random.Random(13)
    leavers = rng.sample(initial, 100)
    before = net.stats.total_messages
    leave_sequentially(net, leavers)
    assert net.check_consistency().consistent
    return net, len(leavers), net.stats.total_messages - before


def test_leave_cost(benchmark):
    net, count, messages = benchmark.pedantic(
        run_leaves, rounds=1, iterations=1
    )
    benchmark.extra_info["leaves"] = count
    benchmark.extra_info["messages_per_leave"] = round(messages / count, 1)
    benchmark.extra_info["notify_per_leave"] = round(
        net.stats.count("LeaveNotifyMsg") / count, 1
    )
    benchmark.extra_info["remaining_consistent"] = True
    assert net.stats.count("LeaveNotifyMsg") == net.stats.count(
        "LeaveNotifyRlyMsg"
    )
