"""Theorem 4 validation: measured E(J) for single joins vs the model.

Joins one node at a time into fresh oracle networks and compares the
average number of JoinNotiMsg against the analytic expectation.
"""

import random

from repro.analysis.expected_cost import expected_join_noti
from repro.ids.idspace import IdSpace
from repro.protocol.join import JoinProtocolNetwork
from repro.topology.attachment import UniformLatencyModel

BASE, DIGITS, N, TRIALS = 16, 8, 200, 40


def measure_single_join_cost():
    space = IdSpace(BASE, DIGITS)
    totals = []
    for seed in range(TRIALS):
        rng = random.Random(seed)
        ids = space.random_unique_ids(N + 1, rng)
        net = JoinProtocolNetwork.from_oracle(
            space,
            ids[:N],
            latency_model=UniformLatencyModel(random.Random(seed + 1)),
            seed=seed,
        )
        net.start_join(ids[N], at=0.0)
        net.run()
        totals.append(net.stats.sent_by(ids[N], "JoinNotiMsg"))
    return sum(totals) / len(totals)


def test_theorem4_vs_simulation(benchmark):
    measured = benchmark.pedantic(
        measure_single_join_cost, rounds=1, iterations=1
    )
    predicted = expected_join_noti(N, BASE, DIGITS)
    benchmark.extra_info["measured_mean_E_J"] = round(measured, 3)
    benchmark.extra_info["theorem4_E_J"] = round(predicted, 3)
    # The simulation should land near the model (generous tolerance:
    # 40 trials of a heavy-tailed count).
    assert abs(measured - predicted) / predicted < 0.4
