"""Core simulation speed: hot-path gains and process fan-out scaling.

Two gates, recorded together in ``BENCH_core_speed.json`` at the repo
root (the perf-trajectory artifact the ROADMAP asks for):

1. **Hot path** -- the concurrent-join workload runs against the
   pre-optimization reference implementations (restored in-process by
   :func:`repro.perf.use_pre_pr_hot_path`) and against the current
   code, alternating rounds, min-of-rounds.  The optimized run must be
   at least 1.25x faster *and* produce byte-identical message counts
   and final consistency -- the optimizations must be invisible to the
   simulation semantics.

2. **Fan-out** -- an 8-seed Figure 15(b) sweep at ``--jobs 1`` vs
   ``--jobs 4`` through :mod:`repro.experiments.parallel`.  Per-seed
   results must be identical; the >= 2.5x wall-clock gate only applies
   on machines with >= 4 CPUs (single-core CI shards still record the
   measured ratio, which process-spawn overhead can push below 1).
"""

import gc
import json
import os
import pathlib
import time

from repro.experiments.fig15b import Fig15bConfig
from repro.experiments.sweep import sweep_fig15b
from repro.experiments.workloads import SMALL_TOPOLOGY, make_workload
from repro.perf import use_pre_pr_hot_path

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
OUTPUT = REPO_ROOT / "BENCH_core_speed.json"

BASE, DIGITS, N, M, SEED = 16, 8, 400, 120, 21
HOT_PATH_ROUNDS = 7
HOT_PATH_MIN_SPEEDUP = 1.25

#: Events/sec recorded by the previous optimization pass on the
#: reference CI box (BENCH_core_speed.json as of the sans-io PR).
REFERENCE_EVENTS_PER_SEC = 18_478
#: Absolute-throughput gate: the optimized hot path must clear
#: ``MIN_EVENTS_RATIO x REFERENCE_EVENTS_PER_SEC``.  The reference was
#: recorded on one specific machine, so the ratio is env-overridable
#: (``REPRO_MIN_EVENTS_RATIO``, set to ``0`` to record without gating)
#: for hosts whose single-core speed differs from the recording box.
MIN_EVENTS_RATIO = float(os.environ.get("REPRO_MIN_EVENTS_RATIO", "3.0"))

SWEEP_CONFIG = Fig15bConfig(
    n=300,
    m=100,
    base=16,
    num_digits=8,
    use_topology=True,
    topology_params=SMALL_TOPOLOGY,
)
SWEEP_SEEDS = range(8)
SWEEP_JOBS = 4
SWEEP_MIN_SPEEDUP = 2.5


def _run_join_workload():
    workload = make_workload(
        base=BASE,
        num_digits=DIGITS,
        n=N,
        m=M,
        seed=SEED,
        use_topology=True,
        topology_params=SMALL_TOPOLOGY,
    )
    workload.start_all_joins(at=0.0)
    workload.run()
    return workload.network


def _time_join():
    # CPU time, not wall clock: the workload is single-threaded and
    # deterministic, and process time is immune to load from other
    # processes on shared CI machines.  The fan-out gate below uses
    # wall clock, where elapsed time is the quantity of interest.
    start = time.process_time()
    net = _run_join_workload()
    return time.process_time() - start, net


def _sweep_fingerprint(sweep):
    """Everything observable about a sweep, for equality checks."""
    return [
        (
            r.config.seed,
            tuple(r.join_noti_counts),
            r.consistent,
            r.all_in_system,
            r.total_messages,
            tuple(sorted(r.message_counts.items())),
        )
        for r in sweep.results
    ]


def test_core_speed_gates():
    record = {
        "benchmark": "core_speed",
        "cpu_count": os.cpu_count(),
        "workload": {
            "base": BASE,
            "num_digits": DIGITS,
            "n": N,
            "m": M,
            "seed": SEED,
            "topology": "small_transit_stub",
        },
    }

    # -- Gate 1: hot-path speedup, alternating rounds ------------------
    _run_join_workload()  # warm-up: imports, allocator, branch caches
    baseline_times, optimized_times = [], []
    nets = {}
    for _ in range(HOT_PATH_ROUNDS):
        # Collect between legs so each one starts from the same heap
        # state: without this, gen-2 collections triggered by the
        # *previous* leg's garbage land in arbitrary rounds and make
        # the distribution bimodal (~40% swings observed).  GC stays
        # enabled during the timed region itself.
        gc.collect()
        with use_pre_pr_hot_path():
            elapsed, nets["pre_pr"] = _time_join()
        baseline_times.append(elapsed)
        gc.collect()
        elapsed, nets["optimized"] = _time_join()
        optimized_times.append(elapsed)

    # Same seed, so the optimizations must change nothing observable.
    assert (
        nets["pre_pr"].stats.snapshot() == nets["optimized"].stats.snapshot()
    )
    assert nets["optimized"].check_consistency().consistent
    assert nets["optimized"].all_in_system()

    baseline = min(baseline_times)
    optimized = min(optimized_times)
    speedup = baseline / optimized
    events = nets["optimized"].simulator.events_fired
    events_per_sec = events / optimized
    events_ratio = events_per_sec / REFERENCE_EVENTS_PER_SEC
    record["hot_path"] = {
        "rounds": HOT_PATH_ROUNDS,
        "timer": "process_time",
        "pre_pr_s": round(baseline, 4),
        "optimized_s": round(optimized, 4),
        "speedup": round(speedup, 3),
        "min_speedup": HOT_PATH_MIN_SPEEDUP,
        "events_fired": events,
        "events_per_sec": round(events_per_sec),
        "reference_events_per_sec": REFERENCE_EVENTS_PER_SEC,
        "events_ratio": round(events_ratio, 3),
        "min_events_ratio": MIN_EVENTS_RATIO,
        "joins_per_sec": round(M / optimized, 1),
        "total_messages": nets["optimized"].stats.total_messages,
    }

    # -- Gate 2: fan-out scaling on the 8-seed sweep -------------------
    start = time.perf_counter()
    serial = sweep_fig15b(SWEEP_CONFIG, SWEEP_SEEDS, jobs=1)
    serial_s = time.perf_counter() - start
    start = time.perf_counter()
    parallel = sweep_fig15b(SWEEP_CONFIG, SWEEP_SEEDS, jobs=SWEEP_JOBS)
    parallel_s = time.perf_counter() - start

    assert _sweep_fingerprint(serial) == _sweep_fingerprint(parallel)
    assert serial.all_consistent

    scaling = serial_s / parallel_s
    gate_applies = (os.cpu_count() or 1) >= SWEEP_JOBS
    record["fan_out"] = {
        "seeds": len(list(SWEEP_SEEDS)),
        "jobs": SWEEP_JOBS,
        "serial_s": round(serial_s, 4),
        "parallel_s": round(parallel_s, 4),
        "scaling": round(scaling, 3),
        "min_scaling": SWEEP_MIN_SPEEDUP,
        "gate_applies": gate_applies,
    }
    OUTPUT.write_text(json.dumps(record, indent=2) + "\n")

    assert speedup >= HOT_PATH_MIN_SPEEDUP, (
        f"hot-path speedup {speedup:.3f}x below the "
        f"{HOT_PATH_MIN_SPEEDUP}x gate (pre-PR {baseline:.3f}s, "
        f"optimized {optimized:.3f}s)"
    )
    if MIN_EVENTS_RATIO > 0:
        assert events_ratio >= MIN_EVENTS_RATIO, (
            f"events/sec {events_per_sec:.0f} is only "
            f"{events_ratio:.3f}x the recorded reference "
            f"{REFERENCE_EVENTS_PER_SEC}/sec (gate {MIN_EVENTS_RATIO}x; "
            f"override with REPRO_MIN_EVENTS_RATIO)"
        )
    if gate_applies:
        assert scaling >= SWEEP_MIN_SPEEDUP, (
            f"--jobs {SWEEP_JOBS} scaling {scaling:.3f}x below the "
            f"{SWEEP_MIN_SPEEDUP}x gate on a {os.cpu_count()}-CPU "
            f"machine (serial {serial_s:.3f}s, parallel {parallel_s:.3f}s)"
        )
