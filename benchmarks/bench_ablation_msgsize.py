"""Ablation: Section 6.2 message-size reductions.

Same workload under the FULL and REDUCED sizing policies; both must
produce consistent networks, and REDUCED must shrink the bytes moved
by the table-carrying JoinNotiMsg / JoinNotiRlyMsg exchanges.
"""

from repro.protocol.sizing import SizingPolicy

from benchmarks.conftest import fresh_network, run_concurrent, sampled_workload

PARAMS = dict(base=16, num_digits=8, n=300, m=100)


def run_policy(sizing):
    space, initial, joiners = sampled_workload(seed=9, **PARAMS)
    net = fresh_network(space, initial, seed=9, sizing=sizing)
    run_concurrent(net, joiners)
    assert net.check_consistency().consistent
    return {
        "noti_bytes": net.stats.bytes_by_type["JoinNotiMsg"],
        "noti_rly_bytes": net.stats.bytes_by_type["JoinNotiRlyMsg"],
        "total_bytes": net.stats.total_bytes,
    }


def run_both():
    return {
        "full": run_policy(SizingPolicy.FULL),
        "reduced": run_policy(SizingPolicy.REDUCED),
    }


def test_message_size_reduction(benchmark):
    results = benchmark.pedantic(run_both, rounds=1, iterations=1)
    full, reduced = results["full"], results["reduced"]
    noti_saving = 1 - (
        (reduced["noti_bytes"] + reduced["noti_rly_bytes"])
        / (full["noti_bytes"] + full["noti_rly_bytes"])
    )
    benchmark.extra_info["full_noti_bytes"] = (
        full["noti_bytes"] + full["noti_rly_bytes"]
    )
    benchmark.extra_info["reduced_noti_bytes"] = (
        reduced["noti_bytes"] + reduced["noti_rly_bytes"]
    )
    benchmark.extra_info["noti_exchange_saving"] = f"{noti_saving:.1%}"
    benchmark.extra_info["total_saving"] = (
        f"{1 - reduced['total_bytes'] / full['total_bytes']:.1%}"
    )
    assert noti_saving > 0.1  # the reduction must be material
