"""Overhead of disabled observability on the join hot path.

The obs subsystem promises that a run with tracing *off* (NullTracer;
registry-backed ``MessageStats``) costs at most 5% over the completely
uninstrumented network.  This benchmark times the
``bench_join_cost``-style workload both ways and records the ratio in
``BENCH_obs_overhead.json`` at the repo root -- the first entry of the
perf trajectory the ROADMAP asks for.

Timing uses min-of-rounds (the standard way to suppress scheduler and
allocator noise) over alternating baseline/instrumented runs.
"""

import json
import pathlib
import time

from benchmarks.conftest import fresh_network, run_concurrent, sampled_workload
from repro.obs import Observability
from repro.protocol.join import JoinProtocolNetwork
from repro.topology.attachment import UniformLatencyModel

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
OUTPUT = REPO_ROOT / "BENCH_obs_overhead.json"

BASE, DIGITS, N, M, SEED = 16, 8, 400, 120, 21
ROUNDS = 5


def _run_once(obs):
    space, initial, joiners = sampled_workload(BASE, DIGITS, N, M, seed=SEED)
    if obs is None:
        net = fresh_network(space, initial, seed=SEED)
    else:
        import random

        net = JoinProtocolNetwork.from_oracle(
            space,
            initial,
            latency_model=UniformLatencyModel(
                random.Random(f"bench-lat-{SEED}"), 1.0, 100.0
            ),
            seed=SEED,
            obs=obs,
        )
    run_concurrent(net, joiners)
    return net


def _time_once(obs_factory):
    obs = obs_factory() if obs_factory is not None else None
    start = time.perf_counter()
    net = _run_once(obs)
    elapsed = time.perf_counter() - start
    return elapsed, net


def test_obs_off_overhead_under_5_percent():
    """Tracing-off instrumentation must stay within 5% of baseline."""
    baseline_times = []
    instrumented_times = []
    nets = {}
    for _ in range(ROUNDS):
        elapsed, nets["baseline"] = _time_once(None)
        baseline_times.append(elapsed)
        elapsed, nets["obs_off"] = _time_once(Observability.metrics_only)
        instrumented_times.append(elapsed)

    # Identical seeds: the instrumented run must change nothing
    # observable, down to exact message counts.
    assert (
        nets["baseline"].stats.snapshot() == nets["obs_off"].stats.snapshot()
    )

    baseline = min(baseline_times)
    instrumented = min(instrumented_times)
    overhead_pct = 100.0 * (instrumented - baseline) / baseline

    record = {
        "benchmark": "obs_overhead",
        "workload": {
            "base": BASE,
            "num_digits": DIGITS,
            "n": N,
            "m": M,
            "seed": SEED,
        },
        "rounds": ROUNDS,
        "baseline_s": round(baseline, 4),
        "obs_disabled_s": round(instrumented, 4),
        "overhead_pct": round(overhead_pct, 2),
        "threshold_pct": 5.0,
        "total_messages": nets["baseline"].stats.total_messages,
    }
    OUTPUT.write_text(json.dumps(record, indent=2) + "\n")

    assert overhead_pct <= 5.0, (
        f"disabled-observability overhead {overhead_pct:.2f}% "
        f"exceeds 5% (baseline {baseline:.3f}s, "
        f"instrumented {instrumented:.3f}s)"
    )
