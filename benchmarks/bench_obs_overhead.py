"""Overhead of observability on the join hot path.

The obs subsystem promises that a run with tracing *off* (NullTracer;
registry-backed ``MessageStats``) costs at most 5% over the completely
uninstrumented network.  This benchmark times the
``bench_join_cost``-style workload both ways and records the ratio in
``BENCH_obs_overhead.json`` at the repo root -- the first entry of the
perf trajectory the ROADMAP asks for.

The ``--audit`` path (a :class:`~repro.obs.audit.LiveAuditor` sampling
Definition 3.8 mid-run) is measured as a *separate* gate: auditing
runs a consistency check every sample interval, so it is allowed real
overhead -- but a bounded amount, so it stays usable on every CI run.

The deployment tier gets its own gate: the same loopback-UDP join
workload with distributed telemetry on (causal stamping, per-daemon
tracer/metrics, phase observer) versus off must stay within 10% --
stamping three ids onto every datagram and appending trace records
must never dominate a real wire send.

Timing uses min-of-rounds (the standard way to suppress scheduler and
allocator noise) over alternating baseline/instrumented runs.
"""

import json
import pathlib
import random
import time

from benchmarks.conftest import fresh_network, run_concurrent, sampled_workload
from repro.ids.idspace import IdSpace
from repro.net.datagram import DatagramTransport
from repro.net.faults import FaultPlan
from repro.obs import Observability
from repro.obs.instrument import JoinObserver
from repro.obs.remote import RemoteTelemetry
from repro.protocol.join import JoinProtocolNetwork
from repro.protocol.network_init import single_node_table
from repro.protocol.node import ProtocolNode
from repro.protocol.status import NodeStatus
from repro.runtime.realtime import AsyncioRuntime
from repro.topology.attachment import UniformLatencyModel

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
OUTPUT = REPO_ROOT / "BENCH_obs_overhead.json"

BASE, DIGITS, N, M, SEED = 16, 8, 400, 120, 21
#: Rounds per variant.  The overhead estimate is min-over-rounds for
#: each variant, which converges on the true floor as rounds grow; CI
#: boxes showed per-run swings large enough that 5 rounds could leave
#: one variant's floor unsampled.
ROUNDS = 9
#: The audited path may cost at most this much over the metrics-only
#: run.  Generous on purpose: the auditor's value is flagging broken
#: runs, not being free; the gate only guards against it becoming so
#: slow that ``join --audit`` stops being a routine CI smoke.
AUDIT_THRESHOLD_PCT = 300.0

#: Loopback-UDP workload: sequential joins (quiescence between each,
#: so both variants replay byte-identical message sequences).
WIRE_NODES, WIRE_SEED = 8, 31
WIRE_ROUNDS = 7
#: The deployed daemons' default pacing (1 ms per protocol unit).
WIRE_TIME_SCALE = 0.001
#: Deterministic per-datagram delay (protocol units), injected through
#: the fault plan on both variants.  Loopback delivers in microseconds
#: -- no real wire does -- so without it the run is a pure CPU spin
#: and the gate measures stamping cost against an impossible baseline.
#: Two units (2 ms at the deployed time scale) is LAN-like.
WIRE_LATENCY = 2.0
WIRE_THRESHOLD_PCT = 10.0


def _run_once(obs, audit=False):
    space, initial, joiners = sampled_workload(BASE, DIGITS, N, M, seed=SEED)
    if obs is None:
        net = fresh_network(space, initial, seed=SEED)
    else:
        import random

        net = JoinProtocolNetwork.from_oracle(
            space,
            initial,
            latency_model=UniformLatencyModel(
                random.Random(f"bench-lat-{SEED}"), 1.0, 100.0
            ),
            seed=SEED,
            obs=obs,
        )
    auditor = net.attach_auditor() if audit else None
    run_concurrent(net, joiners)
    if auditor is not None:
        assert auditor.finalize().passed
    return net


def _time_once(obs_factory, audit=False):
    obs = obs_factory() if obs_factory is not None else None
    start = time.perf_counter()
    net = _run_once(obs, audit=audit)
    elapsed = time.perf_counter() - start
    return elapsed, net


_MEASURED = {}


def _measure():
    """Time baseline / metrics-only / audited runs; write the record.

    Cached at module scope so the two gate tests share one measurement
    (and ``BENCH_obs_overhead.json`` is written exactly once).
    """
    if _MEASURED:
        return _MEASURED
    baseline_times = []
    instrumented_times = []
    audited_times = []
    nets = {}
    # The cheap pair first, interleaved in ABBA order so neither
    # variant systematically lands in a slow or fast machine phase;
    # the audited runs go in their own loop afterwards, because
    # interleaving them was observed to inflate the adjacent timings
    # (allocator/cache pressure from the consistency sweeps).
    for round_index in range(ROUNDS):
        order = (None, Observability.metrics_only)
        if round_index % 2:
            order = tuple(reversed(order))
        for factory in order:
            if factory is None:
                elapsed, nets["baseline"] = _time_once(None)
                baseline_times.append(elapsed)
            else:
                elapsed, nets["obs_off"] = _time_once(factory)
                instrumented_times.append(elapsed)
    for _ in range(ROUNDS):
        elapsed, nets["audited"] = _time_once(
            Observability.metrics_only, audit=True
        )
        audited_times.append(elapsed)

    # Identical seeds: neither instrumentation nor the auditor may
    # change anything observable, down to exact message counts.
    assert (
        nets["baseline"].stats.snapshot() == nets["obs_off"].stats.snapshot()
    )
    assert (
        nets["baseline"].stats.snapshot() == nets["audited"].stats.snapshot()
    )

    baseline = min(baseline_times)
    instrumented = min(instrumented_times)
    audited = min(audited_times)
    overhead_pct = 100.0 * (instrumented - baseline) / baseline
    audit_overhead_pct = 100.0 * (audited - instrumented) / instrumented

    record = {
        "benchmark": "obs_overhead",
        "workload": {
            "base": BASE,
            "num_digits": DIGITS,
            "n": N,
            "m": M,
            "seed": SEED,
        },
        "rounds": ROUNDS,
        "baseline_s": round(baseline, 4),
        "obs_disabled_s": round(instrumented, 4),
        "audited_s": round(audited, 4),
        "overhead_pct": round(overhead_pct, 2),
        "audit_overhead_pct": round(audit_overhead_pct, 2),
        "threshold_pct": 5.0,
        "audit_threshold_pct": AUDIT_THRESHOLD_PCT,
        "total_messages": nets["baseline"].stats.total_messages,
    }
    if OUTPUT.exists():
        # Keep the wire-tier fields from an earlier (or concurrent)
        # _measure_wire() pass instead of clobbering them.
        for key, value in json.loads(OUTPUT.read_text()).items():
            if key.startswith("wire_"):
                record.setdefault(key, value)
    OUTPUT.write_text(json.dumps(record, indent=2) + "\n")
    _MEASURED.update(record)
    return _MEASURED


def _run_wire_once(telemetry):
    """One loopback-UDP cluster run; returns (elapsed_s, messages)."""
    runtime = AsyncioRuntime(time_scale=WIRE_TIME_SCALE)
    space = IdSpace(4, 4)
    ids = space.random_unique_ids(WIRE_NODES, random.Random(WIRE_SEED))
    transports, observers = [], []
    try:
        for index in range(WIRE_NODES):
            if telemetry:
                bundle = RemoteTelemetry(node=str(ids[index]))
                tracer, metrics = bundle.tracer, bundle.metrics
                observer = JoinObserver(bundle.observability())
            else:
                tracer = metrics = observer = None
            transport = DatagramTransport(
                runtime,
                ("127.0.0.1", 0),
                faults=FaultPlan(latency=WIRE_LATENCY),
                tracer=tracer,
                metrics=metrics,
            )
            transport.open()
            transports.append(transport)
            observers.append(observer)
        for a in range(WIRE_NODES):
            for b in range(WIRE_NODES):
                if a != b:
                    transports[a].add_peer(
                        ids[b], transports[b].local_addr
                    )
        nodes = [
            ProtocolNode(
                ids[0],
                transports[0],
                status=NodeStatus.IN_SYSTEM,
                table=single_node_table(ids[0]),
            )
        ]
        for index in range(1, WIRE_NODES):
            node = ProtocolNode(
                ids[index], transports[index], status=NodeStatus.COPYING
            )
            if telemetry:
                node.on_phase = observers[index].on_phase
            nodes.append(node)

        start = time.perf_counter()
        for index in range(1, WIRE_NODES):
            runtime.schedule(0.0, nodes[index].begin_join, ids[0])
            runtime.run(wall_budget=30.0)
        elapsed = time.perf_counter() - start

        assert all(
            node.status == NodeStatus.IN_SYSTEM for node in nodes
        )
        messages = sum(t.stats.total_messages for t in transports)
        return elapsed, messages
    finally:
        for transport in transports:
            transport.close()
        runtime.close()


_WIRE = {}


def _measure_wire():
    """Time the loopback-UDP workload with telemetry on and off."""
    if _WIRE:
        return _WIRE
    on_times, off_times, messages = [], [], {}
    for round_index in range(WIRE_ROUNDS):
        order = (False, True)
        if round_index % 2:
            order = tuple(reversed(order))
        for telemetry in order:
            elapsed, total = _run_wire_once(telemetry)
            (on_times if telemetry else off_times).append(elapsed)
            messages[telemetry] = total
    # Same sequential workload -> byte-identical message sequences.
    assert messages[True] == messages[False]

    off, on = min(off_times), min(on_times)
    record = {
        "wire_nodes": WIRE_NODES,
        "wire_rounds": WIRE_ROUNDS,
        "wire_off_s": round(off, 4),
        "wire_telemetry_s": round(on, 4),
        "wire_overhead_pct": round(100.0 * (on - off) / off, 2),
        "wire_threshold_pct": WIRE_THRESHOLD_PCT,
        "wire_messages": messages[False],
    }
    merged = json.loads(OUTPUT.read_text()) if OUTPUT.exists() else {}
    merged.update(record)
    OUTPUT.write_text(json.dumps(merged, indent=2) + "\n")
    _WIRE.update(record)
    return _WIRE


def test_obs_off_overhead_under_5_percent():
    """Tracing-off instrumentation must stay within 5% of baseline."""
    record = _measure()
    assert record["overhead_pct"] <= 5.0, (
        f"disabled-observability overhead {record['overhead_pct']:.2f}% "
        f"exceeds 5% (baseline {record['baseline_s']:.3f}s, "
        f"instrumented {record['obs_disabled_s']:.3f}s)"
    )


def test_audit_overhead_bounded():
    """``--audit`` may cost real time, but a bounded amount."""
    record = _measure()
    assert record["audit_overhead_pct"] <= AUDIT_THRESHOLD_PCT, (
        f"live-audit overhead {record['audit_overhead_pct']:.2f}% over "
        f"the metrics-only run exceeds {AUDIT_THRESHOLD_PCT:.0f}% "
        f"(metrics-only {record['obs_disabled_s']:.3f}s, audited "
        f"{record['audited_s']:.3f}s)"
    )


def test_wire_telemetry_overhead_under_10_percent():
    """Distributed telemetry on the UDP tier must stay within 10% of
    the same workload run without it."""
    record = _measure_wire()
    assert record["wire_overhead_pct"] <= WIRE_THRESHOLD_PCT, (
        f"wire-telemetry overhead {record['wire_overhead_pct']:.2f}% "
        f"exceeds {WIRE_THRESHOLD_PCT:.0f}% "
        f"(off {record['wire_off_s']:.3f}s, "
        f"on {record['wire_telemetry_s']:.3f}s)"
    )
