"""Storage cost: O(log n) distinct neighbors per node (Section 1).

"Each node maintains a neighbor table storing pointers to O(log n)
nodes in the network."  Measures mean distinct-neighbor counts for a
range of network sizes and checks the growth is logarithmic, not
linear: the expected filled-entry count is ~ (b−1)·log_b(n) non-self
entries plus the d self-pointers.
"""

import math
import random

from repro.ids.idspace import IdSpace
from repro.routing.oracle import build_consistent_tables

SIZES = (50, 100, 200, 400, 800)
BASE, DIGITS = 16, 8


def measure():
    results = {}
    for n in SIZES:
        space = IdSpace(BASE, DIGITS)
        ids = space.random_unique_ids(n, random.Random(n))
        tables = build_consistent_tables(ids, random.Random(n + 1))
        distinct = [
            len(tables[node].distinct_neighbors() - {node})
            for node in ids
        ]
        results[n] = sum(distinct) / len(distinct)
    return results


def test_table_size_logarithmic(benchmark):
    results = benchmark.pedantic(measure, rounds=1, iterations=1)
    for n, mean_neighbors in results.items():
        benchmark.extra_info[f"n={n}"] = round(mean_neighbors, 1)
    # Doubling n adds ~ (b-1) * log_b(2) ~ 3.75 neighbors, far from
    # doubling the count: check growth is additive, not multiplicative.
    ratios = [
        results[b] / results[a]
        for a, b in zip(SIZES, SIZES[1:])
    ]
    assert all(ratio < 1.5 for ratio in ratios), ratios
    increments = [
        results[b] - results[a]
        for a, b in zip(SIZES, SIZES[1:])
    ]
    expected = (BASE - 1) * math.log(2, BASE)
    for increment in increments:
        assert abs(increment - expected) <= 2.5, (increment, expected)
