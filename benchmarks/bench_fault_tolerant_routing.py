"""Routing availability under failures: primary-only vs backups.

Footnote 6 / Tapestry's motivation for multi-neighbor entries: between
a crash and the recovery sweep, primary-only routing loses paths while
backup-assisted routing keeps most of them.  Measures delivery rates
at several failure fractions.
"""

import random

from repro.recovery import fail_nodes
from repro.routing.backups import harvest_backups, route_fault_tolerant
from repro.routing.router import route

from benchmarks.conftest import fresh_network, sampled_workload

FRACTIONS = (0.05, 0.15, 0.30)
PROBES = 300


def run_fraction(fraction, seed=51):
    space, initial, _ = sampled_workload(
        base=16, num_digits=8, n=250, m=1, seed=seed
    )
    net = fresh_network(space, initial, seed=seed)
    harvest_backups(net)
    rng = random.Random(seed)
    victims = set(rng.sample(initial, int(len(initial) * fraction)))
    fail_nodes(net, victims)
    live = set(net.member_ids())
    tables = {nid: net.departed[nid].table for nid in victims}
    tables.update(net.tables())
    stores = {
        nid: (net.nodes.get(nid) or net.departed[nid]).backups
        for nid in list(net.nodes) + list(victims)
    }
    provider = lambda nid: tables[nid]  # noqa: E731
    backups = lambda nid: stores[nid]  # noqa: E731

    members = sorted(live, key=lambda n: n.digits)
    primary_ok = ft_ok = 0
    for _ in range(PROBES):
        source, target = rng.sample(members, 2)
        plain = route(provider, source, target)
        if plain.success and all(h not in victims for h in plain.path):
            primary_ok += 1
        ft = route_fault_tolerant(provider, backups, live, source, target)
        if ft.success:
            ft_ok += 1
    return primary_ok / PROBES, ft_ok / PROBES


def run_all():
    return {f: run_fraction(f) for f in FRACTIONS}


def test_fault_tolerant_routing(benchmark):
    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    for fraction, (primary, ft) in results.items():
        label = f"{fraction:.0%}"
        benchmark.extra_info[f"{label}_primary_delivery"] = round(primary, 3)
        benchmark.extra_info[f"{label}_backup_delivery"] = round(ft, 3)
        assert ft >= primary
    # At 30% failures backups must still deliver a clear majority.
    assert results[0.30][1] > 0.8
    assert results[0.30][1] > results[0.30][0]
