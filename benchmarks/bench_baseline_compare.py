"""Join protocol vs Tapestry-style multicast join (Section 1 claims).

The paper's qualitative argument against the multicast approach:
"requiring many existing nodes to store and process extra states as
well as send and receive messages on behalf of joining nodes".  This
bench quantifies it on the same workload:

* join state held by *existing* nodes (zero for the paper's protocol,
  by design -- only joining nodes keep join state);
* messages per join;
* consistency under concurrency (the baseline is optimistic and can
  break; the paper's protocol is proven).
"""

import random

from repro.baselines.multicast_join import MulticastJoinNetwork
from repro.topology.attachment import UniformLatencyModel

from benchmarks.conftest import fresh_network, run_concurrent, sampled_workload

PARAMS = dict(base=4, num_digits=5, n=120, m=40, seed=33)


def run_protocol():
    space, initial, joiners = sampled_workload(**PARAMS)
    net = fresh_network(space, initial, seed=PARAMS["seed"])
    run_concurrent(net, joiners)
    return net, len(joiners)


def run_baseline_sequential():
    space, initial, joiners = sampled_workload(**PARAMS)
    net = MulticastJoinNetwork.from_oracle(
        space,
        initial,
        latency_model=UniformLatencyModel(random.Random(1), 1.0, 100.0),
        seed=PARAMS["seed"],
    )
    for joiner in joiners:
        net.start_join(joiner, at=net.simulator.now)
        net.run()
    return net, len(joiners)


def run_baseline_concurrent():
    space, initial, joiners = sampled_workload(**PARAMS)
    net = MulticastJoinNetwork.from_oracle(
        space,
        initial,
        latency_model=UniformLatencyModel(random.Random(1), 1.0, 100.0),
        seed=PARAMS["seed"],
    )
    for joiner in joiners:
        net.start_join(joiner, at=0.0)
    net.run()
    return net, len(joiners)


def test_join_protocol_state_burden(benchmark):
    net, m = benchmark.pedantic(run_protocol, rounds=1, iterations=1)
    assert net.check_consistency().consistent
    # Only joining nodes hold join state: existing nodes' queues stay
    # untouched except Qj entries they answer promptly; at quiescence
    # everything is empty.
    for node_id in net.initial_ids:
        node = net.node(node_id)
        assert not node.q_reply and not node.q_joinwait
    benchmark.extra_info["existing_node_state_records"] = 0
    benchmark.extra_info["messages_per_join"] = round(
        net.stats.total_messages / m, 1
    )
    benchmark.extra_info["consistent_under_concurrency"] = True


def test_multicast_baseline_state_burden(benchmark):
    net, m = benchmark.pedantic(
        run_baseline_sequential, rounds=1, iterations=1
    )
    assert net.check_consistency().consistent
    holders = sum(net.mstats.holders_for(j) for j in net.joiner_ids)
    benchmark.extra_info["existing_node_state_records"] = holders
    benchmark.extra_info["peak_simultaneous_records"] = (
        net.mstats.peak_pending_records
    )
    benchmark.extra_info["messages_per_join"] = round(
        net.stats.total_messages / m, 1
    )
    assert holders > 0  # the burden the paper's design removes


def test_multicast_baseline_concurrency_failure(benchmark):
    net, m = benchmark.pedantic(
        run_baseline_concurrent, rounds=1, iterations=1
    )
    report = net.check_consistency()
    benchmark.extra_info["consistent_under_concurrency"] = report.consistent
    benchmark.extra_info["violations"] = len(report.violations)
    # Optimistic multicast join generally breaks under concurrency on
    # this workload (pinned seed).
    assert not report.consistent
