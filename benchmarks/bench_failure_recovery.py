"""Failure recovery: consistency restoration vs failure fraction.

For each failure fraction, crash that share of a 200-node network and
run the recovery sweep; record rounds, repairs, clears, messages, and
whether full Definition 3.8 consistency was restored.
"""

import random

from benchmarks.conftest import fresh_network, sampled_workload
from repro.recovery import fail_nodes, recover_from_failures

FRACTIONS = (0.05, 0.15, 0.30)


def run_fraction(fraction, seed=29):
    space, initial, _ = sampled_workload(
        base=16, num_digits=8, n=150, m=1, seed=seed
    )
    net = fresh_network(space, initial, seed=seed)
    rng = random.Random(seed)
    victims = rng.sample(initial, int(len(initial) * fraction))
    fail_nodes(net, victims)
    before = net.stats.total_messages
    report = recover_from_failures(net)
    messages = net.stats.total_messages - before
    return report, messages, len(victims)


def run_all():
    return {f: run_fraction(f) for f in FRACTIONS}


def test_failure_recovery(benchmark):
    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    for fraction, (report, messages, victims) in results.items():
        label = f"{fraction:.0%}"
        benchmark.extra_info[f"{label}_consistent"] = report.consistent
        benchmark.extra_info[f"{label}_rounds"] = report.rounds
        benchmark.extra_info[f"{label}_repaired"] = report.repaired_entries
        benchmark.extra_info[f"{label}_cleared"] = report.cleared_entries
        benchmark.extra_info[f"{label}_messages_per_failure"] = round(
            messages / victims, 1
        )
        assert report.consistent, f"{label}: {report}"
