"""Footnote 2: hop-count scaling across schemes.

"The number is O(log n) for Chord and O(d n^{1/d}) for CAN" -- and
O(log_b n) for the hypercube scheme.  Measures mean lookup hops for
the three schemes over the same member sets at growing n.
"""

import random

from repro.baselines.can import CanNetwork
from repro.baselines.chord import ChordNetwork
from repro.ids.idspace import IdSpace
from repro.routing.oracle import build_consistent_tables
from repro.routing.router import surrogate_route

SIZES = (50, 150, 450)
PROBES = 120


def measure_size(n, seed=61):
    space = IdSpace(16, 6)
    rng = random.Random(seed + n)
    members = space.random_unique_ids(n, rng)
    pairs = [
        (rng.choice(members), space.from_int(rng.randrange(space.size)))
        for _ in range(PROBES)
    ]

    tables = build_consistent_tables(members, random.Random(seed))
    provider = lambda nid: tables[nid]  # noqa: E731
    hypercube_hops = []
    for origin, key in pairs:
        result = surrogate_route(provider, origin, key)
        assert result.success
        hypercube_hops.append(result.hops)

    chord = ChordNetwork(members)
    chord_hops, _ = chord.lookup_stats(pairs)

    can = CanNetwork(members, dims=2, rng=random.Random(seed))
    can_hops = can.mean_lookup_hops(pairs)

    return (
        sum(hypercube_hops) / len(hypercube_hops),
        chord_hops,
        can_hops,
    )


def run_all():
    return {n: measure_size(n) for n in SIZES}


def test_hops_scaling(benchmark):
    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    for n, (hypercube, chord, can) in results.items():
        benchmark.extra_info[f"n={n}_hypercube"] = round(hypercube, 2)
        benchmark.extra_info[f"n={n}_chord"] = round(chord, 2)
        benchmark.extra_info[f"n={n}_can"] = round(can, 2)
    small, large = results[SIZES[0]], results[SIZES[-1]]
    # Logarithmic schemes grow slowly over a 9x size increase...
    assert large[0] - small[0] < 2.5  # hypercube: +log_16(9) ~ 0.8
    assert large[1] - small[1] < 4.0  # chord: +log_2(9) ~ 3.2
    # ...CAN grows like sqrt(n): a 9x size increase ~triples hops.
    assert large[2] > small[2] * 2.0
    # And at every size the hypercube uses the fewest hops.
    for hypercube, chord, can in results.values():
        assert hypercube <= chord
        assert hypercube <= can
