"""Ablation: oracle construction vs Section 6.1 protocol bootstrap.

Both build a consistent n-node network; the oracle does it from global
knowledge in zero messages, the protocol bootstrap pays the full join
traffic.  This bench quantifies the trade, and doubles as a benchmark
of oracle construction cost (used by every experiment setup).
"""

import random

from repro.consistency.checker import check_consistency
from repro.ids.idspace import IdSpace
from repro.protocol.join import JoinProtocolNetwork
from repro.protocol.network_init import initialize_network
from repro.routing.oracle import build_consistent_tables
from repro.topology.attachment import UniformLatencyModel

N = 150


def make_ids():
    space = IdSpace(16, 8)
    return space, space.random_unique_ids(N, random.Random(11))


def oracle_build():
    space, ids = make_ids()
    tables = build_consistent_tables(ids, random.Random(12))
    return tables


def protocol_bootstrap():
    space, ids = make_ids()
    net = JoinProtocolNetwork(
        space,
        latency_model=UniformLatencyModel(random.Random(13), 1.0, 100.0),
        seed=13,
    )
    initialize_network(net, ids, stagger=0.0)
    net.run()
    assert net.all_in_system()
    return net


def test_oracle_construction(benchmark):
    tables = benchmark(oracle_build)
    assert check_consistency(tables).consistent
    benchmark.extra_info["nodes"] = N
    benchmark.extra_info["messages"] = 0


def test_protocol_bootstrap(benchmark):
    net = benchmark.pedantic(protocol_bootstrap, rounds=1, iterations=1)
    assert check_consistency(net.tables()).consistent
    benchmark.extra_info["nodes"] = N
    benchmark.extra_info["messages"] = net.stats.total_messages
    benchmark.extra_info["messages_per_node"] = round(
        net.stats.total_messages / N, 1
    )
