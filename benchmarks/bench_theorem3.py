"""Theorem 3: CpRstMsg + JoinWaitMsg per join is at most d+1.

Runs a concurrent-join workload and records the observed maximum and
mean against the bound.
"""

from repro.analysis.expected_cost import theorem3_bound

from benchmarks.conftest import fresh_network, run_concurrent, sampled_workload


def run_workload():
    space, initial, joiners = sampled_workload(16, 8, 300, 100, seed=7)
    net = fresh_network(space, initial, seed=7)
    run_concurrent(net, joiners)
    return space, net


def test_theorem3_bound(benchmark):
    space, net = benchmark.pedantic(run_workload, rounds=1, iterations=1)
    counts = net.theorem3_counts()
    bound = theorem3_bound(space.num_digits)
    assert max(counts) <= bound
    benchmark.extra_info["bound_d_plus_1"] = bound
    benchmark.extra_info["observed_max"] = max(counts)
    benchmark.extra_info["observed_mean"] = round(
        sum(counts) / len(counts), 3
    )
