"""Scale benchmark: a 100k-node audited join run, plus the paper-scale
Figure 15(b) configuration.

Two sections, recorded together in ``BENCH_scale.json`` at the repo
root:

1. **scale** -- ``REPRO_SCALE_N`` total nodes (default 100,000): an
   oracle-built consistent network of ``N - M`` members that ``M``
   protocol joiners enter simultaneously, watched by a
   :class:`~repro.obs.audit.LiveAuditor` running the incremental
   (dirty-set) consistency checker.  The whole build-and-run is traced
   with :mod:`tracemalloc` and gated on **peak KiB per node** -- a
   scale-invariant form of the memory budget, so the same gate applies
   to the reduced-``N`` CI smoke run (``REPRO_SCALE_N=5000``) and the
   full 100k run.  The run itself is gated on the auditor's verdict:
   zero hard incidents, Theorem 3 within bound, final tables
   consistent with everyone in system.

2. **figure15b_full** -- Figure 15(b) regenerated at the paper's full
   GT-ITM scale: the default :class:`TransitStubParams` (8320 routers,
   the router count used in the paper's simulations) with ``n = 3096``
   initial members and ``m = 1000`` joiners, ``b = 16``, ``d = 8``.
   Gated on consistency, Theorem 3, and the Theorem 5 mean bound.
   Skip with ``REPRO_SCALE_FIG15B=0`` (the CI smoke job does).

Environment knobs: ``REPRO_SCALE_N`` (total nodes), ``REPRO_SCALE_M``
(protocol joiners), ``REPRO_SCALE_MEM_KIB_PER_NODE`` (memory gate,
``0`` disables), ``REPRO_SCALE_FIG15B`` (``0`` skips section 2).
"""

import gc
import json
import os
import pathlib
import time
import tracemalloc

from repro.experiments.fig15b import Fig15bConfig, run_fig15b
from repro.experiments.workloads import make_workload
from repro.obs.audit import AuditConfig
from repro.topology.transit_stub import TransitStubParams

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
OUTPUT = REPO_ROOT / "BENCH_scale.json"

#: Total nodes in the scale section (initial members + joiners).
SCALE_N = int(os.environ.get("REPRO_SCALE_N", "100000"))
#: How many of them enter through the join protocol (simultaneously).
SCALE_M = int(os.environ.get("REPRO_SCALE_M", "500"))
SCALE_BASE = 4
SCALE_DIGITS = 9  # 4^9 = 262,144 IDs: room for 10^5 unique draws
SCALE_SEED = 11
#: Virtual time between auditor samples.
AUDIT_INTERVAL = 200.0

#: Peak traced KiB per node the build-and-run may use.  Measured flat
#: at ~13.8 KiB/node from n=5k to n=100k (the footprint is genuinely
#: linear: table entries, reverse-pointer sets, and per-node protocol
#: state; see docs/performance.md), so the same gate applies to the
#: reduced-N CI smoke and the full run.  Override with
#: ``REPRO_SCALE_MEM_KIB_PER_NODE`` (``0`` disables the gate).
MEM_GATE_KIB_PER_NODE = float(
    os.environ.get("REPRO_SCALE_MEM_KIB_PER_NODE", "16.0")
)

RUN_FIG15B = os.environ.get("REPRO_SCALE_FIG15B", "1") != "0"
#: The paper's full-scale smaller setup: 8320 routers, 4096 end-hosts
#: (3096 initial + 1000 joining), b=16, d=8.
FIG15B_CONFIG = Fig15bConfig(
    n=3096,
    m=1000,
    base=16,
    num_digits=8,
    seed=0,
    use_topology=True,
    topology_params=TransitStubParams(),
)


def _run_scale_section():
    """The audited join run, traced; returns its record dict."""
    gc.collect()
    tracemalloc.start()
    build_t0 = time.process_time()
    workload = make_workload(
        base=SCALE_BASE,
        num_digits=SCALE_DIGITS,
        n=SCALE_N - SCALE_M,
        m=SCALE_M,
        seed=SCALE_SEED,
        use_topology=False,
    )
    auditor = workload.network.attach_auditor(
        AuditConfig(
            interval=AUDIT_INTERVAL,
            incremental=True,
            stall_timeout=10_000.0,
        )
    )
    workload.start_all_joins(at=0.0)
    build_s = time.process_time() - build_t0

    run_t0 = time.process_time()
    events = workload.network.run()
    run_s = time.process_time() - run_t0

    report = auditor.finalize()
    _current, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()

    checker = auditor._incremental
    kib_per_node = peak / 1024.0 / SCALE_N
    record = {
        "total_nodes": SCALE_N,
        "initial_nodes": SCALE_N - SCALE_M,
        "joiners": SCALE_M,
        "base": SCALE_BASE,
        "num_digits": SCALE_DIGITS,
        "seed": SCALE_SEED,
        "build_and_start_sec": round(build_s, 3),
        "run_sec": round(run_s, 3),
        "events_fired": events,
        "events_per_sec": round(events / run_s) if run_s else None,
        "virtual_duration": workload.network.runtime.now,
        "total_messages": workload.network.stats.total_messages,
        "memory": {
            "tracemalloc_peak_mib": round(peak / (1024.0 * 1024.0), 2),
            "kib_per_node": round(kib_per_node, 3),
            "gate_kib_per_node": MEM_GATE_KIB_PER_NODE or None,
        },
        "audit": {
            "samples": len(report.samples),
            "hard_incidents": len(report.hard_incidents),
            "soft_incidents": len(report.warnings),
            "theorem3_max": report.theorem3_max,
            "theorem3_bound": report.theorem3_bound,
            "final_consistent": report.final_consistent,
            "all_in_system": report.all_in_system,
            "incremental": {
                "nodes_reverified": checker.nodes_reverified,
                "full_rescans": checker.full_rescans,
            },
        },
    }

    assert report.passed, (
        f"audit raised hard incidents: "
        f"{[i.to_json_dict() for i in report.hard_incidents[:5]]}"
    )
    assert report.final_consistent, "final tables are not consistent"
    assert report.all_in_system, "not every node reached the S state"
    assert report.theorem3_max <= report.theorem3_bound
    # Join-only run: membership never shrinks, so the incremental
    # checker must never have fallen back to a full rescan.
    assert checker.full_rescans == 0
    if MEM_GATE_KIB_PER_NODE > 0:
        assert kib_per_node <= MEM_GATE_KIB_PER_NODE, (
            f"peak memory {kib_per_node:.2f} KiB/node exceeds the "
            f"{MEM_GATE_KIB_PER_NODE} KiB/node gate "
            f"(override with REPRO_SCALE_MEM_KIB_PER_NODE)"
        )
    return record


def _run_fig15b_section():
    """Figure 15(b) at the paper's 8320-router scale."""
    gc.collect()
    t0 = time.process_time()
    result = run_fig15b(FIG15B_CONFIG)
    elapsed = time.process_time() - t0

    record = {
        "config": {
            "n": FIG15B_CONFIG.n,
            "m": FIG15B_CONFIG.m,
            "base": FIG15B_CONFIG.base,
            "num_digits": FIG15B_CONFIG.num_digits,
            "seed": FIG15B_CONFIG.seed,
            "routers": 8320,
        },
        "run_sec": round(elapsed, 3),
        "mean_join_noti": round(result.mean_join_noti, 3),
        "max_join_noti": max(result.join_noti_counts),
        "theorem5_bound": round(result.theorem5_bound, 3),
        "theorem3_violations": result.theorem3_violations,
        "consistent": result.consistent,
        "all_in_system": result.all_in_system,
        "total_messages": result.total_messages,
    }

    assert result.consistent, "figure 15(b) run ended inconsistent"
    assert result.all_in_system
    assert result.theorem3_violations == 0
    assert result.mean_join_noti <= result.theorem5_bound, (
        f"mean JoinNotiMsg {result.mean_join_noti:.3f} exceeds the "
        f"Theorem 5 bound {result.theorem5_bound:.3f}"
    )
    return record


def test_scale_gates():
    record = {
        "generated_by": "benchmarks/bench_scale.py",
        "scale": _run_scale_section(),
        "figure15b_full": (
            _run_fig15b_section()
            if RUN_FIG15B
            else {"skipped": "REPRO_SCALE_FIG15B=0"}
        ),
    }
    OUTPUT.write_text(json.dumps(record, indent=2) + "\n")
    print(f"\nwrote {OUTPUT}")


if __name__ == "__main__":
    test_scale_gates()
