"""Property P2 (routing locality): hypercube tables vs a Chord ring.

The paper's introduction argues Chord "do[es] not satisfy P2" -- hops
are few but each hop may cross the Internet.  Same member set, same
transit-stub topology:

* Chord lookups: O(log n) hops, high stretch (no proximity in finger
  choice, and none available -- finger targets are dictated by ring
  arithmetic);
* hypercube tables: O(log_b n) hops, moderate stretch as built, low
  stretch after the optimization protocol (entries may be *any* class
  member, so proximity is free to exploit).
"""

import random

from repro.baselines.chord import ChordNetwork
from repro.experiments.workloads import SMALL_TOPOLOGY, make_workload
from repro.optimize import measure_stretch, optimize_tables

N = 200


def run_comparison():
    workload = make_workload(
        base=16,
        num_digits=8,
        n=N,
        m=1,
        seed=41,
        use_topology=True,
        topology_params=SMALL_TOPOLOGY,
    )
    workload.start_all_joins()
    workload.run()
    net = workload.network
    members = net.member_ids()
    model = net.latency_model

    rng = random.Random(41)
    pairs = [tuple(rng.sample(members, 2)) for _ in range(200)]

    chord = ChordNetwork(members)
    chord_hops, chord_stretch = chord.lookup_stats(
        pairs, latency_model=model
    )

    before = measure_stretch(net, sample_pairs=200, rng=random.Random(41))
    optimize_tables(net)
    after = measure_stretch(net, sample_pairs=200, rng=random.Random(41))
    return {
        "chord_hops": chord_hops,
        "chord_stretch": chord_stretch,
        "hypercube_stretch_unoptimized": before.mean_stretch,
        "hypercube_stretch_optimized": after.mean_stretch,
    }


def test_locality_vs_chord(benchmark):
    results = benchmark.pedantic(run_comparison, rounds=1, iterations=1)
    for key, value in results.items():
        benchmark.extra_info[key] = round(value, 2)
    # The intro's claim, quantified: the optimized hypercube tables
    # beat Chord's locality decisively.
    assert (
        results["hypercube_stretch_optimized"]
        < results["chord_stretch"] / 2
    )
