#!/usr/bin/env python3
"""C-set trees on the paper's Figure 2 example.

W = {10261, 47051, 00261} joins V = {72430, 10353, 62332, 13141,
31701} concurrently (b=8, d=5).  Prints the tree template C(V, W)
(Figure 2(b)), runs the join protocol, prints the realized tree
cset(V, W) (one possible Figure 2(c)), and checks conditions (1)-(3)
of Section 3.3.

Run:  python examples/cset_tree_demo.py [seed]
"""

import sys

from repro.experiments.fig2 import V_IDS, W_IDS, figure2_example


def main() -> None:
    seed = int(sys.argv[1]) if len(sys.argv) > 1 else 0
    print(f"V = {{{', '.join(V_IDS)}}}")
    print(f"W = {{{', '.join(W_IDS)}}} join concurrently (seed {seed})")
    print()

    result = figure2_example(seed=seed)

    print("Tree template C(V, W)  [Figure 2(b)]:")
    print(result.template.render())
    print()
    print("Realized tree cset(V, W) at t_e  [cf. Figure 2(c)]:")
    print(result.realized.render())
    print()
    print(f"network consistent (Theorem 1) : {result.consistent}")
    print(f"condition (1) — tree complete  : {not result.condition1}")
    print(f"condition (2) — roots updated  : {not result.condition2}")
    print(f"condition (3) — siblings known : {not result.condition3}")
    print()
    print(
        "Different seeds realize the template differently (which node "
        "lands in each C-set depends on message interleaving); try "
        "`python examples/cset_tree_demo.py 3`."
    )


if __name__ == "__main__":
    main()
