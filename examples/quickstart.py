#!/usr/bin/env python3
"""Quickstart: build a network, join nodes concurrently, verify the
paper's guarantees, and route a message.

Run:  python examples/quickstart.py
"""

import random

from repro import (
    IdSpace,
    JoinProtocolNetwork,
    verify_reachability,
)
from repro.topology.attachment import UniformLatencyModel


def main() -> None:
    # 1. An ID space: 8 hexadecimal digits, as in the paper's large
    #    simulations (b=16, d=8).
    space = IdSpace(base=16, num_digits=8)
    rng = random.Random(1)
    ids = space.random_unique_ids(120, rng)
    initial, joiners = ids[:100], ids[100:]

    # 2. A consistent initial network <V, N(V)> of 100 nodes.
    net = JoinProtocolNetwork.from_oracle(
        space,
        initial,
        latency_model=UniformLatencyModel(random.Random(2), 1.0, 100.0),
        seed=1,
    )

    # 3. Twenty nodes join concurrently (all at t=0) via the paper's
    #    join protocol.
    for joiner in joiners:
        net.start_join(joiner)
    net.run()

    # 4. The paper's theorems, checked directly.
    assert net.all_in_system(), "Theorem 2: every joiner becomes an S-node"
    report = net.check_consistency()
    assert report.consistent, "Theorem 1: the network stays consistent"
    print(f"network size     : {len(net.member_ids())} nodes")
    print(f"entries checked  : {report.entries_checked}")
    print(f"consistent       : {report.consistent}")

    reach = verify_reachability(net.tables(), sample_pairs=500)
    print(
        f"reachability     : {reach.pairs_checked} sampled pairs, "
        f"max {reach.max_hops} hops, mean {reach.mean_hops:.2f}"
    )

    # 5. Route a message between two of the new nodes (Section 2.2).
    source, target = joiners[0], joiners[-1]
    result = net.route(source, target)
    print(f"route {source} -> {target}: "
          + " -> ".join(str(n) for n in result.path))

    # 6. Communication cost of the joins (Theorem 3: at most d+1 big
    #    setup messages each).
    print(f"CpRst+JoinWait per join (bound {space.num_digits + 1}): "
          f"max {max(net.theorem3_counts())}")
    print(f"JoinNotiMsg per join: {net.join_noti_counts()}")


if __name__ == "__main__":
    main()
