#!/usr/bin/env python3
"""A file-sharing overlay on top of the routing infrastructure.

The paper's introduction motivates the hypercube scheme with
peer-to-peer object sharing: objects get location-independent names,
and a query for an object is routed to the node whose ID is
"responsible" for the object's hashed name.  This example drives the
library's :class:`repro.routing.location.ObjectDirectory`:

* object names are hashed into the same ID space as nodes (SHA-1, as
  in Section 2);
* the *root* of an object is resolved by PRR surrogate routing toward
  the object ID -- with consistent tables every origin converges on
  the same root, making location deterministic (property P1);
* nodes publish (object -> holder) mappings at the root, and queries
  route to the root to find a holder;
* machines keep joining the overlay while objects are being published
  and queried, exercising dynamic membership (property P4); a join can
  move an object's root, so the directory republishes afterwards (what
  real deployments do on neighbor-table change).

Run:  python examples/file_sharing_network.py
"""

import random

from repro import IdSpace, JoinProtocolNetwork
from repro.routing.location import ObjectDirectory
from repro.topology.attachment import UniformLatencyModel


def main() -> None:
    space = IdSpace(base=16, num_digits=8)
    rng = random.Random(7)
    ids = space.random_unique_ids(90, rng)
    initial, late_joiners = ids[:60], ids[60:]

    net = JoinProtocolNetwork.from_oracle(
        space,
        initial,
        latency_model=UniformLatencyModel(random.Random(8), 1.0, 80.0),
        seed=7,
    )
    directory = ObjectDirectory(net)

    # Publish some objects from random holders.
    objects = [f"track-{i:02d}.mp3" for i in range(12)]
    for name in objects:
        holder = rng.choice(initial)
        root = directory.publish(holder, name)
        print(f"publish {name:14s} id={directory.object_id(name)} "
              f"holder={holder} root={root}")

    # New machines join the overlay (dynamic membership, P4).
    for joiner in late_joiners:
        net.start_join(joiner)
    net.run()
    assert net.all_in_system() and net.check_consistency().consistent
    print(f"\n{len(late_joiners)} machines joined; "
          "network still consistent")

    # Joins can move roots; republish (the real-world maintenance step).
    moved = directory.republish_all()
    print(f"republished {moved} mappings\n")

    # Deterministic location (P1): queries from ANY origin -- old
    # member or fresh joiner -- resolve the same root and find every
    # object.
    found = 0
    for name in objects:
        origins = [rng.choice(late_joiners), rng.choice(initial)]
        roots = {directory.root_of(name, origin) for origin in origins}
        assert len(roots) == 1, "surrogate routing must be origin-independent"
        holders = directory.query(origins[0], name)
        status = "HIT " if holders else "MISS"
        if holders:
            found += 1
        print(f"query  {name:14s} from {origins[0]}: {status} "
              f"root={roots.pop()} holders={sorted(map(str, holders))}")
    print(f"\nfound {found}/{len(objects)} objects "
          "(deterministic location, property P1)")
    assert found == len(objects)


if __name__ == "__main__":
    main()
