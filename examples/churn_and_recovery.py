#!/usr/bin/env python3
"""Dynamic membership end to end: joins, leaves, crashes, recovery,
and locality optimization.

The paper solves the join side of "problem 2" and names leave,
failure recovery and table optimization as the next protocols to build
on its conceptual foundation (Section 7).  This example runs the whole
lifecycle this repository implements:

  1. bootstrap a consistent network;
  2. concurrent joins (Theorem 1/2);
  3. voluntary leaves (tables repaired via reverse-neighbor records);
  4. crash failures + recovery sweep (detection, advertisement,
     candidate search with TTL escalation);
  5. nearest-neighbor table optimization (route stretch drops).

Run:  python examples/churn_and_recovery.py
"""

import random

from repro.experiments.workloads import SMALL_TOPOLOGY, make_workload
from repro.optimize import measure_stretch, optimize_tables
from repro.protocol.leave import leave_sequentially
from repro.recovery import fail_nodes, recover_from_failures


def show(net, label):
    report = net.check_consistency()
    print(
        f"{label:<34} members={len(net.member_ids()):4d}  "
        f"consistent={report.consistent}"
    )


def main() -> None:
    rng = random.Random(5)
    workload = make_workload(
        base=16,
        num_digits=8,
        n=200,
        m=60,
        seed=5,
        use_topology=True,
        topology_params=SMALL_TOPOLOGY,
    )
    net = workload.network
    show(net, "bootstrap (oracle, n=200)")

    # 2. sixty concurrent joins
    workload.start_all_joins(at=net.simulator.now)
    net.run()
    assert net.all_in_system()
    show(net, "after 60 concurrent joins")

    # 3. forty voluntary leaves
    leavers = rng.sample(net.member_ids(), 40)
    leave_sequentially(net, leavers)
    show(net, "after 40 leaves")

    # 4. crash 15% of the survivors, then recover
    victims = rng.sample(net.member_ids(), len(net.member_ids()) * 15 // 100)
    fail_nodes(net, victims)
    broken = net.check_consistency()
    print(
        f"{'after ' + str(len(victims)) + ' crashes':<34} members="
        f"{len(net.member_ids()):4d}  consistent={broken.consistent} "
        f"({len(broken.violations)} violations)"
    )
    report = recover_from_failures(net)
    print(
        f"{'recovery sweep':<34} rounds={report.rounds}  "
        f"repaired={report.repaired_entries}  "
        f"cleared={report.cleared_entries}"
    )
    show(net, "after recovery")

    # 5. optimize for proximity
    before = measure_stretch(net, sample_pairs=200)
    opt = optimize_tables(net)
    after = measure_stretch(net, sample_pairs=200)
    show(net, f"after optimization ({opt.total_switches} switches)")
    print(
        f"\nroute stretch: mean {before.mean_stretch:.2f} -> "
        f"{after.mean_stretch:.2f}, max {before.max_stretch:.2f} -> "
        f"{after.max_stretch:.2f}  (property P2, routing locality)"
    )


if __name__ == "__main__":
    main()
