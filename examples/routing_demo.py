#!/usr/bin/env python3
"""The hypercube routing scheme on the paper's Figure 1 example.

Rebuilds the example network around node 21233 (b=4, d=5), prints its
neighbor table in the figure's layout, and traces suffix-matching
routes hop by hop (Section 2.2).

Run:  python examples/routing_demo.py
"""

from repro.experiments.fig1 import figure1_example, figure1_network_ids
from repro.ids.idspace import IdSpace
from repro.routing.oracle import build_consistent_tables
from repro.routing.router import route


def main() -> None:
    table, rendering = figure1_example()
    print(rendering)
    print()

    space = IdSpace(base=4, num_digits=5)
    members = figure1_network_ids(space)
    tables = build_consistent_tables(members)
    provider = lambda node_id: tables[node_id]  # noqa: E731

    owner = space.from_string("21233")
    for target_name in ("01100", "31033", "03233"):
        target = space.from_string(target_name)
        result = route(provider, owner, target)
        hops = " -> ".join(str(node) for node in result.path)
        matched = [node.csuf_len(target) for node in result.path]
        print(f"route {owner} -> {target}:  {hops}")
        print(f"  matched suffix digits per hop: {matched}")
    print()
    print(
        "Every hop extends the matched suffix, so routes take at most "
        f"d={space.num_digits} hops."
    )


if __name__ == "__main__":
    main()
