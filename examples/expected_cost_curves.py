#!/usr/bin/env python3
"""Figure 15(a): theoretical upper bound of E(J) vs network size.

Prints the paper's four curves (m in {500, 1000}, d in {8, 40}, b=16)
as a table over n = 10,000..100,000, plus the Theorem 5 values the
paper quotes for its simulation configurations.

Run:  python examples/expected_cost_curves.py
"""

from repro.analysis.expected_cost import (
    expected_join_noti,
    expected_join_noti_upper_bound,
)
from repro.experiments.fig15a import render_figure15a


def main() -> None:
    print("Figure 15(a): upper bound of E(J)  (Theorem 5)")
    print(render_figure15a())
    print()
    print("Theorem 5 bounds for the Figure 15(b) configurations")
    for n in (3096, 7192):
        for d in (8, 40):
            bound = expected_join_noti_upper_bound(n, 1000, 16, d)
            print(f"  n={n:5d}, m=1000, b=16, d={d:2d}: {bound:.3f}")
    print("  (the paper prints 8.001, 8.001, 6.986, 6.986)")
    print()
    print("Theorem 4 (single join) for the same networks")
    for n in (3096, 7192):
        print(f"  n={n:5d}: E(J) = {expected_join_noti(n, 16, 8):.3f}")


if __name__ == "__main__":
    main()
