#!/usr/bin/env python3
"""The paper's join protocol vs a Tapestry-style multicast join.

Quantifies Section 1's design argument: the multicast approach makes
*existing* nodes store and process join state, and its optimistic
handling of concurrency can leave tables inconsistent; the paper's
protocol burdens only joining nodes and is proven consistent for
arbitrary concurrent joins.

Run:  python examples/baseline_comparison.py
"""

import random

from repro.baselines.multicast_join import MulticastJoinNetwork
from repro.ids.idspace import IdSpace
from repro.protocol.join import JoinProtocolNetwork
from repro.topology.attachment import UniformLatencyModel

BASE, DIGITS, N, M, SEED = 4, 5, 120, 40, 33


def workload():
    space = IdSpace(BASE, DIGITS)
    ids = space.random_unique_ids(N + M, random.Random(SEED))
    return space, ids[:N], ids[N:]


def latency(seed):
    return UniformLatencyModel(random.Random(seed), 1.0, 100.0)


def run_protocol(concurrent: bool):
    space, initial, joiners = workload()
    net = JoinProtocolNetwork.from_oracle(
        space, initial, latency_model=latency(1), seed=SEED
    )
    for joiner in joiners:
        net.start_join(joiner, at=0.0 if concurrent else net.simulator.now)
        if not concurrent:
            net.run()
    net.run()
    report = net.check_consistency()
    return {
        "messages/join": round(net.stats.total_messages / M, 1),
        "existing-node join state": 0,
        "consistent": report.consistent,
    }


def run_baseline(concurrent: bool):
    space, initial, joiners = workload()
    net = MulticastJoinNetwork.from_oracle(
        space, initial, latency_model=latency(1), seed=SEED
    )
    for joiner in joiners:
        net.start_join(joiner, at=0.0 if concurrent else net.simulator.now)
        if not concurrent:
            net.run()
    net.run()
    report = net.check_consistency()
    holders = sum(net.mstats.holders_for(j) for j in net.joiner_ids)
    return {
        "messages/join": round(net.stats.total_messages / M, 1),
        "existing-node join state": holders,
        "consistent": report.consistent,
    }


def main() -> None:
    rows = [
        ("paper protocol, sequential", run_protocol(concurrent=False)),
        ("paper protocol, concurrent", run_protocol(concurrent=True)),
        ("multicast join, sequential", run_baseline(concurrent=False)),
        ("multicast join, concurrent", run_baseline(concurrent=True)),
    ]
    keys = ["messages/join", "existing-node join state", "consistent"]
    width = max(len(label) for label, _ in rows)
    print(f"{'scenario':<{width}}  " + "  ".join(f"{k:>24}" for k in keys))
    for label, stats in rows:
        print(
            f"{label:<{width}}  "
            + "  ".join(f"{str(stats[k]):>24}" for k in keys)
        )
    print()
    print(
        "The multicast baseline parks join state on existing nodes and "
        "loses consistency under concurrent joins; the paper's protocol "
        "does neither."
    )


if __name__ == "__main__":
    main()
