#!/usr/bin/env python3
"""Figure 15(b) at paper scale.

Runs the paper's concurrent-join simulations: an 8320-router
transit-stub topology, n end-hosts forming a consistent network and
m = 1000 more joining simultaneously, b = 16:

    n=3096 d=8    n=3096 d=40    n=7192 d=8    n=7192 d=40

Each configuration takes roughly 15-90 seconds.  Prints the CDF of
JoinNotiMsg per joiner, the average (the paper reports 6.117 / 6.051 /
5.026 / 5.399) and the Theorem 5 bound (8.001 / 8.001 / 6.986 /
6.986).

Run:  python examples/figure15b_full.py            # n=3096, d=8 only
      python examples/figure15b_full.py --all      # all four configs
"""

import sys
import time

from repro.experiments.fig15b import PAPER_CONFIGS, run_fig15b
from repro.experiments.harness import render_cdf_table


def run_one(config) -> None:
    print(f"== {config.label} "
          f"(topology: {config.topology_params.num_routers} routers) ==")
    started = time.time()
    result = run_fig15b(config)
    elapsed = time.time() - started
    print(render_cdf_table(result.cdf))
    print(f"  mean JoinNotiMsg per joiner : {result.mean_join_noti:.3f}")
    print(f"  Theorem 5 upper bound       : {result.theorem5_bound:.3f}")
    print(f"  consistent / all in system  : "
          f"{result.consistent} / {result.all_in_system}")
    print(f"  Theorem 3 violations        : {result.theorem3_violations}")
    print(f"  SpeNotiMsg sent             : "
          f"{result.message_counts.get('SpeNotiMsg', 0)}")
    print(f"  total messages              : {result.total_messages}")
    print(f"  wall time                   : {elapsed:.1f}s")
    print()


def main() -> None:
    configs = (
        PAPER_CONFIGS if "--all" in sys.argv[1:] else PAPER_CONFIGS[:1]
    )
    for config in configs:
        run_one(config)


if __name__ == "__main__":
    main()
